// The registry + polymorphic round-trip contract: every registered
// oracle builds, answers, saves through the scheme-tagged envelope, and
// reloads to byte-identical answers — including the legacy pre-epsilon
// text-header vintage.
#include "core/oracle_registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "baselines/exact_oracle.hpp"
#include "core/sketch_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {
namespace {

Graph test_graph() { return erdos_renyi(60, 0.1, {1, 9}, 17); }

FlagSet test_flags() {
  return FlagSet({{"k", "2"}, {"epsilon", "0.25"}, {"landmarks", "6"},
                  {"rounds", "8"}, {"samples", "4"}});
}

TEST(OracleRegistry, BuiltinsRegistered) {
  const OracleRegistry& reg = OracleRegistry::instance();
  std::set<std::string> names;
  for (const OracleScheme* s : reg.schemes()) names.insert(s->name);
  for (const char* want :
       {"tz", "slack", "cdg", "graceful", "exact", "landmark", "vivaldi"}) {
    EXPECT_TRUE(names.count(want)) << "missing scheme: " << want;
  }
}

TEST(OracleRegistry, UnknownNameThrowsWithNameList) {
  const Graph g = test_graph();
  try {
    OracleRegistry::instance().build("nope", g, test_flags());
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("landmark"), std::string::npos);
  }
}

TEST(OracleRegistry, DuplicateRegistrationThrows) {
  OracleScheme dup;
  dup.name = "tz";
  dup.build = [](const Graph&, const FlagSet&) {
    return std::unique_ptr<DistanceOracle>();
  };
  EXPECT_THROW(OracleRegistry::instance().add(std::move(dup)),
               std::runtime_error);
}

class OracleRegistrySchemes
    : public ::testing::TestWithParam<const char*> {};

TEST_P(OracleRegistrySchemes, BuildsAndAnswersSanely) {
  const Graph g = test_graph();
  const OracleScheme& scheme = OracleRegistry::instance().at(GetParam());
  const auto oracle = scheme.build(g, test_flags());
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->num_nodes(), g.num_nodes());
  EXPECT_EQ(oracle->scheme(), GetParam());
  EXPECT_FALSE(oracle->guarantee().empty());
  EXPECT_GT(oracle->mean_size_words(), 0.0);
  EXPECT_EQ(oracle->query(5, 5), 0u);
  const Capabilities caps = oracle->capabilities();
  if (caps.build_cost_available) {
    ASSERT_NE(oracle->build_cost(), nullptr);
    EXPECT_GT(oracle->build_cost()->rounds, 0u);
  }
  if (caps.exact) {
    const auto d = dijkstra(g, 3);
    for (NodeId v = 0; v < g.num_nodes(); v += 7) {
      EXPECT_EQ(oracle->query(3, v), d[v]);
    }
  }
  if (caps.supports_paths) {
    // Witnessed-path estimates never undercut the true distance.
    const auto d = dijkstra(g, 1);
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      if (v == 1) continue;
      EXPECT_GE(oracle->query(1, v), d[v]) << "pair 1," << v;
    }
  }
}

TEST_P(OracleRegistrySchemes, QueryBatchMatchesQuery) {
  const Graph g = test_graph();
  const auto oracle =
      OracleRegistry::instance().build(GetParam(), g, test_flags());
  std::vector<QueryPair> pairs;
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = 1; v < g.num_nodes(); v += 7) pairs.emplace_back(u, v);
  }
  std::vector<Dist> batch(pairs.size());
  oracle->query_batch(pairs, batch);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(batch[i], oracle->query(pairs[i].first, pairs[i].second));
  }
}

TEST_P(OracleRegistrySchemes, EnvelopeRoundTripIsByteIdentical) {
  const Graph g = test_graph();
  const OracleScheme& scheme = OracleRegistry::instance().at(GetParam());
  const auto oracle = scheme.build(g, test_flags());
  ASSERT_TRUE(oracle->capabilities().supports_save);

  std::stringstream ss;
  oracle->save(ss);
  const LoadedOracle loaded = OracleRegistry::instance().load(ss);
  EXPECT_EQ(loaded.envelope.scheme, GetParam());
  EXPECT_EQ(loaded.envelope.n, g.num_nodes());
  EXPECT_TRUE(loaded.envelope.epsilon_recorded);
  ASSERT_NE(loaded.oracle, nullptr);
  EXPECT_EQ(loaded.oracle->num_nodes(), oracle->num_nodes());
  EXPECT_EQ(loaded.oracle->scheme(), oracle->scheme());
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u; v < g.num_nodes(); v += 4) {
      EXPECT_EQ(loaded.oracle->query(u, v), oracle->query(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST_P(OracleRegistrySchemes, ServesThroughQueryService) {
  const Graph g = test_graph();
  const auto oracle =
      OracleRegistry::instance().build(GetParam(), g, test_flags());
  QueryService service(*oracle, {.shards = 4, .threads = 2,
                                 .cache_capacity = 64});
  std::vector<QueryService::Pair> pairs;
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    pairs.emplace_back(u, (u * 7 + 3) % g.num_nodes());
  }
  std::vector<Dist> answers(pairs.size());
  service.query_batch(pairs, answers);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(answers[i], oracle->query(pairs[i].first, pairs[i].second));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, OracleRegistrySchemes,
                         ::testing::Values("tz", "slack", "cdg", "graceful",
                                           "exact", "landmark", "vivaldi"));

TEST(OracleEnvelope, LegacyPreEpsilonHeaderStillLoads) {
  // Files written before the epsilon header field have the payload magic
  // right after k; the envelope reader must flag epsilon as unrecorded
  // and the payload must still load to identical answers.
  const Graph g = test_graph();
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.25;
  const SketchOracle built(g, cfg);
  std::stringstream ss;
  built.save(ss);
  std::string text = ss.str();
  const auto nl = text.find('\n');
  std::string header = text.substr(0, nl);
  header.resize(header.rfind(' '));  // strip the epsilon token
  std::stringstream legacy(header + text.substr(nl));

  const LoadedOracle loaded = OracleRegistry::instance().load(legacy);
  EXPECT_FALSE(loaded.envelope.epsilon_recorded);
  EXPECT_EQ(loaded.envelope.scheme, "slack");
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 6) {
      EXPECT_EQ(loaded.oracle->query(u, v), built.query(u, v));
    }
  }
}

TEST(OracleEnvelope, FreshSavesAlwaysRecordEpsilon) {
  // The epsilon_known() wart is gone from the engine API because the
  // envelope now always carries epsilon on save — including schemes that
  // do not use it.
  const Graph g = test_graph();
  for (const char* name : {"tz", "graceful", "exact", "landmark"}) {
    const auto oracle =
        OracleRegistry::instance().build(name, g, test_flags());
    std::stringstream ss;
    oracle->save(ss);
    EXPECT_TRUE(read_envelope_header(ss).epsilon_recorded) << name;
  }
}

TEST(OracleEnvelope, RejectsInflatedNodeCountHeader) {
  // The payload carries its own record counts; an envelope n that
  // disagrees (corruption or a hand edit) must be rejected at load, or
  // the CLI's num_nodes()-based bounds check would wave through queries
  // that index past the loaded vectors.
  const Graph g = test_graph();
  for (const char* name : {"tz", "slack", "cdg", "graceful"}) {
    const auto oracle =
        OracleRegistry::instance().build(name, g, test_flags());
    std::stringstream ss;
    oracle->save(ss);
    std::string text = ss.str();
    const std::string n_token = " " + std::to_string(g.num_nodes()) + " ";
    const auto pos = text.find(n_token);
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, n_token.size(),
                 " " + std::to_string(g.num_nodes() + 9) + " ");
    std::stringstream corrupted(text);
    EXPECT_THROW(OracleRegistry::instance().load(corrupted),
                 std::runtime_error)
        << name;
  }
}

TEST(OracleEnvelope, MalformedHeaderThrows) {
  for (const char* bad :
       {"", "bogus tz 10 2 0.1\n", "scheme tz\n", "scheme tz 10 2 junk\n"}) {
    std::stringstream ss(bad);
    EXPECT_THROW(read_envelope_header(ss), std::runtime_error) << bad;
  }
}

TEST(SketchStoreOracle, PacksFromOracleAndRejectsBaselines) {
  const Graph g = test_graph();
  const auto tz = OracleRegistry::instance().build("tz", g, test_flags());
  const SketchStore store = SketchStore::from_oracle(*tz);
  EXPECT_EQ(store.num_nodes(), g.num_nodes());
  EXPECT_EQ(store.scheme(), "tz");
  EXPECT_GT(store.mean_size_words(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = u; v < g.num_nodes(); v += 5) {
      EXPECT_EQ(store.query(u, v), tz->query(u, v));
    }
  }
  // Re-packing the packed representation is a copy.
  const SketchStore again = SketchStore::from_oracle(store);
  EXPECT_EQ(again.num_nodes(), store.num_nodes());

  const auto landmark =
      OracleRegistry::instance().build("landmark", g, test_flags());
  EXPECT_THROW(SketchStore::from_oracle(*landmark), std::runtime_error);
}

TEST(SketchStoreOracle, LoadOracleRoundTrip) {
  const Graph g = test_graph();
  const auto tz = OracleRegistry::instance().build("tz", g, test_flags());
  const std::string path =
      ::testing::TempDir() + "/oracle_registry_store.bin";
  SketchStore::from_oracle(*tz).save_file(path);
  const std::unique_ptr<DistanceOracle> oracle =
      SketchStore::load_oracle(path);
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->scheme(), "tz");
  EXPECT_TRUE(oracle->capabilities().supports_paths);
  for (NodeId u = 0; u < g.num_nodes(); u += 6) {
    for (NodeId v = u; v < g.num_nodes(); v += 7) {
      EXPECT_EQ(oracle->query(u, v), tz->query(u, v));
    }
  }
}

TEST(EvaluateStretchOracle, SkipsPairsWithoutGroundTruth) {
  // Two disconnected rings: cross-component pairs have no finite ground
  // truth, so they must be skipped for every oracle — not scored as
  // stretch est/infinity for Vivaldi nor as "unreachable" noise for the
  // sketches.
  GraphBuilder b(24);
  for (NodeId u = 0; u < 12; ++u) b.add_edge(u, (u + 1) % 12, 2);
  for (NodeId u = 12; u < 24; ++u) {
    b.add_edge(u, u + 1 == 24 ? 12 : u + 1, 2);
  }
  const Graph g = b.build();
  const SampledGroundTruth gt(g, 6, 7);
  const auto exact =
      OracleRegistry::instance().build("exact", g, test_flags());
  const StretchReport r = evaluate_stretch(g, gt, *exact, {});
  EXPECT_GT(r.skipped_no_ground_truth, 0u);
  EXPECT_EQ(r.unreachable, 0u);
  EXPECT_EQ(r.underestimates, 0u);
  EXPECT_DOUBLE_EQ(r.max_stretch(), 1.0);

  // Vivaldi has no path support: without the skip its report would score
  // est/infinity on every cross-component pair. (The embedding itself is
  // still garbage on disconnected graphs — that is the baseline's
  // documented failure mode, not the evaluator's.)
  const auto vivaldi =
      OracleRegistry::instance().build("vivaldi", g, test_flags());
  const StretchReport rv = evaluate_stretch(g, gt, *vivaldi, {});
  EXPECT_EQ(rv.skipped_no_ground_truth, r.skipped_no_ground_truth);
  EXPECT_TRUE(std::isfinite(rv.max_stretch()));
}

}  // namespace
}  // namespace dsketch
