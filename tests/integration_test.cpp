// Cross-module integration: full pipelines on nontrivial topologies,
// exercising simulator + protocols + sketches + evaluation together.
#include <gtest/gtest.h>

#include "baselines/exact_oracle.hpp"
#include "congest/bellman_ford.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/stretch_eval.hpp"

#include <sstream>

namespace dsketch {
namespace {

TEST(Integration, SketchBeatsOnlineQueryOnHighSGraph) {
  // §2.1's headline claim: with preprocessing, a query costs O(D * sketch)
  // rounds; without it, Omega(S). On a weighted path S is huge.
  const Graph g = path(120, {1, 1}, 0);
  const SimStats online = online_distance_rounds(g, 0);
  EXPECT_GE(online.rounds, 119u);

  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 4;
  const SketchEngine engine(g, cfg);
  // Query-time exchange cost model: O(D) hops * sketch words; here we
  // simply verify the sketch is drastically smaller than n words so the
  // exchange beats rebuilding distances.
  EXPECT_LT(engine.mean_size_words(), 120.0);
}

TEST(Integration, AllSchemesSoundOnIspTopology) {
  const Graph g = isp_two_level(200, 12, {1, 3}, {5, 25}, 5);
  const ExactOracle oracle(g);
  const SampledGroundTruth gt(g, 10, 3);

  for (const Scheme scheme :
       {Scheme::kThorupZwick, Scheme::kSlack, Scheme::kCdg,
        Scheme::kGraceful}) {
    BuildConfig cfg;
    cfg.scheme = scheme;
    cfg.k = 3;
    cfg.epsilon = 0.2;
    const SketchEngine engine(g, cfg);
    const auto report = evaluate_stretch(
        g, gt, [&](NodeId u, NodeId v) { return engine.query(u, v); }, {});
    EXPECT_EQ(report.underestimates, 0u)
        << "scheme " << static_cast<int>(scheme);
    EXPECT_EQ(report.unreachable, 0u);
  }
}

TEST(Integration, GraphRoundTripThenBuild) {
  const Graph g = barabasi_albert(120, 2, {1, 8}, 9);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  cfg.seed = 4;
  const SketchEngine a(g, cfg);
  const SketchEngine b(h, cfg);
  for (NodeId u = 0; u < g.num_nodes(); u += 11) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 13) {
      EXPECT_EQ(a.query(u, v), b.query(u, v));
    }
  }
}

TEST(Integration, ParallelSimulationMatchesSerial) {
  const Graph g = erdos_renyi(150, 0.04, {1, 9}, 13);
  BuildConfig serial;
  serial.scheme = Scheme::kThorupZwick;
  serial.k = 3;
  serial.seed = 8;
  BuildConfig parallel = serial;
  parallel.sim.threads = 4;
  const SketchEngine a(g, serial);
  const SketchEngine b(g, parallel);
  EXPECT_EQ(a.cost().rounds, b.cost().rounds);
  EXPECT_EQ(a.cost().messages, b.cost().messages);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 9) {
      EXPECT_EQ(a.query(u, v), b.query(u, v));
    }
  }
}

TEST(Integration, StretchOrderingAcrossK) {
  // Larger k must not produce larger sketches... it must produce *smaller*
  // sketches and (weakly) worse stretch — the Theorem 1.1 tradeoff.
  const Graph g = erdos_renyi(250, 0.03, {1, 9}, 17);
  const SampledGroundTruth gt(g, 10, 9);
  double prev_size = 1e18;
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = k;
    cfg.seed = 21;
    const SketchEngine engine(g, cfg);
    const auto report = evaluate_stretch(
        g, gt, [&](NodeId u, NodeId v) { return engine.query(u, v); }, {});
    EXPECT_LE(report.max_stretch(), 2.0 * k - 1.0 + 1e-9);
    EXPECT_LT(engine.mean_size_words(), prev_size);
    prev_size = engine.mean_size_words();
  }
}

TEST(Integration, EchoAndOracleCostsComparable) {
  const Graph g = grid2d(10, 10, {1, 5}, 3);
  BuildConfig oracle_cfg;
  oracle_cfg.scheme = Scheme::kThorupZwick;
  oracle_cfg.k = 2;
  oracle_cfg.seed = 5;
  BuildConfig echo_cfg = oracle_cfg;
  echo_cfg.termination = TerminationMode::kEcho;
  const SketchEngine a(g, oracle_cfg);
  const SketchEngine b(g, echo_cfg);
  // Echo termination costs more but within the paper's constant-factor
  // prediction (x2 for echoes + convergecast overhead).
  EXPECT_GE(b.cost().messages, a.cost().messages);
  EXPECT_LE(b.cost().messages, 6 * a.cost().messages + 100ull * g.num_nodes());
}

}  // namespace
}  // namespace dsketch
