// Scale stress: the constructions at n in the thousands, where the
// event-driven simulator and parallel stepping earn their keep. Kept to a
// few seconds of wall time; exercises code paths (hash-map growth, queue
// churn, fast-forward) that small tests cannot.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/stretch_eval.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

TEST(Stress, TzAtFourThousandNodes) {
  const NodeId n = 4096;
  const Graph g = erdos_renyi(n, 6.0 / n, {1, 16}, 99);
  Hierarchy h = Hierarchy::sample(n, 4, 7);
  while (!h.top_level_nonempty()) h = Hierarchy::sample(n, 4, 8);
  SimConfig cfg;
  cfg.threads = 0;  // use all cores
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle, cfg);
  ASSERT_EQ(r.labels.num_nodes(), n);

  // Spot-check soundness against sampled ground truth.
  const SampledGroundTruth gt(g, 4, 3);
  EvalOptions opts;
  opts.max_pairs_per_source = 300;
  const auto report = evaluate_stretch(
      g, gt,
      [&](NodeId u, NodeId v) { return tz_query(r.labels.view(u), r.labels.view(v)); },
      opts);
  EXPECT_EQ(report.underestimates, 0u);
  EXPECT_LE(report.max_stretch(), 7.0);  // 2k-1
  // Size sanity: far below the n words of an APSP row.
  double words = 0;
  for (NodeId u = 0; u < n; ++u) {
    words += static_cast<double>(r.labels.size_words(u));
  }
  EXPECT_LT(words / n, 300.0);
}

TEST(Stress, EchoTerminationAtTwoThousandNodes) {
  const NodeId n = 2048;
  const Graph g = barabasi_albert(n, 3, {1, 8}, 5);
  Hierarchy h = Hierarchy::sample(n, 3, 11);
  while (!h.top_level_nonempty()) h = Hierarchy::sample(n, 3, 12);
  const auto echo = build_tz_distributed(g, h, TerminationMode::kEcho);
  const auto oracle = build_tz_distributed(g, h, TerminationMode::kOracle);
  ASSERT_EQ(echo.labels.num_nodes(), n);
  for (NodeId u = 0; u < n; u += 97) {
    EXPECT_TRUE(echo.labels.view(u) == oracle.labels.view(u)) << "node " << u;
  }
}

}  // namespace
}  // namespace dsketch
