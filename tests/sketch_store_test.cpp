#include "serve/sketch_store.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>

#include "core/engine.hpp"
#include "dynamics/incremental.hpp"
#include "graph/generators.hpp"
#include "sketch/tz_centralized.hpp"

namespace dsketch {
namespace {

BuildConfig config_for(Scheme scheme) {
  BuildConfig cfg;
  cfg.scheme = scheme;
  cfg.k = 2;
  cfg.epsilon = 0.25;
  return cfg;
}

class SketchStoreSchemes : public ::testing::TestWithParam<Scheme> {
 protected:
  SketchStoreSchemes()
      : graph_(erdos_renyi(80, 0.08, {1, 9}, 17)),
        engine_(graph_, config_for(GetParam())) {}

  Graph graph_;
  SketchEngine engine_;
};

TEST_P(SketchStoreSchemes, PackedQueriesMatchEngineBitIdentically) {
  const SketchStore store = SketchStore::from_engine(engine_);
  EXPECT_EQ(store.num_nodes(), graph_.num_nodes());
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    for (NodeId v = u; v < graph_.num_nodes(); v += 3) {
      EXPECT_EQ(store.query(u, v), engine_.query(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST_P(SketchStoreSchemes, BinaryRoundTripPreservesEverything) {
  const SketchStore store = SketchStore::from_engine(engine_);
  std::stringstream ss;
  store.write(ss);
  const SketchStore back = SketchStore::read(ss);
  EXPECT_EQ(back.scheme(), store.scheme());
  EXPECT_EQ(back.num_nodes(), store.num_nodes());
  EXPECT_EQ(back.k(), store.k());
  EXPECT_DOUBLE_EQ(back.epsilon(), store.epsilon());
  for (NodeId u = 0; u < graph_.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < graph_.num_nodes(); v += 5) {
      EXPECT_EQ(back.query(u, v), engine_.query(u, v));
    }
  }
}

TEST_P(SketchStoreSchemes, TextConvertersRoundTrip) {
  // engine text -> store must answer like the engine...
  std::stringstream text;
  engine_.save(text);
  const SketchStore store = SketchStore::from_text(text);
  // ...and store -> text must load back into an equivalent engine.
  std::stringstream text2;
  store.to_text(text2);
  const SketchEngine reloaded = SketchEngine::load(text2);
  EXPECT_EQ(reloaded.config().scheme, engine_.config().scheme);
  for (NodeId u = 0; u < graph_.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < graph_.num_nodes(); v += 4) {
      EXPECT_EQ(store.query(u, v), engine_.query(u, v));
      EXPECT_EQ(reloaded.query(u, v), engine_.query(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SketchStoreSchemes,
                         ::testing::Values(Scheme::kThorupZwick,
                                           Scheme::kSlack, Scheme::kCdg,
                                           Scheme::kGraceful));

class SketchStoreCorruption : public ::testing::Test {
 protected:
  std::string valid_bytes(StoreFormat format = StoreFormat::kV3) {
    const Graph g = erdos_renyi(40, 0.1, {1, 5}, 3);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 2;
    const SketchEngine engine(g, cfg);
    std::stringstream ss;
    SketchStore::from_engine(engine).write(ss, format);
    return ss.str();
  }
};

TEST_F(SketchStoreCorruption, RejectsBadMagic) {
  std::string bytes = valid_bytes();
  bytes[0] = 'X';
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsUnsupportedVersion) {
  std::string bytes = valid_bytes();
  bytes[8] = 99;  // version lives right after the 8-byte magic
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsPayloadBitFlip) {
  std::string bytes = valid_bytes();
  bytes[bytes.size() - 1] ^= 0x40;  // checksum no longer matches
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsTruncation) {
  const std::string bytes = valid_bytes();
  for (const std::size_t keep : {std::size_t{4}, std::size_t{40},
                                 bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream ss(bytes.substr(0, keep));
    EXPECT_THROW(SketchStore::read(ss), std::runtime_error) << keep << " bytes";
  }
}

TEST_F(SketchStoreCorruption, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsChecksumValidStructuralCorruption) {
  // The checksum only detects accidental corruption; a crafted file can
  // recompute it. Inflate the first TZ record's level count and patch
  // the checksum: the structural validator must still reject the file
  // (otherwise the first query would read out of bounds). This aims at
  // the fixed-width v2 layout; store_v3_test covers the v3 equivalent.
  std::string bytes = valid_bytes(StoreFormat::kV2);
  const auto u32_at = [&](std::size_t pos) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint8_t>(bytes[pos]) |
        (static_cast<std::uint8_t>(bytes[pos + 1]) << 8) |
        (static_cast<std::uint8_t>(bytes[pos + 2]) << 16) |
        (static_cast<std::uint8_t>(bytes[pos + 3]) << 24));
  };
  const std::uint32_t n = u32_at(16);  // magic(8) + version + scheme
  const auto fnv = [&](std::size_t begin, std::size_t end) {
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = begin; i < end; ++i) {
      hash ^= static_cast<std::uint8_t>(bytes[i]);
      hash *= 1099511628211ULL;
    }
    return hash;
  };
  const auto patch_u64 = [&](std::size_t pos, std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      bytes[pos + i] = static_cast<char>((x >> (8 * i)) & 0xff);
    }
  };
  // v2 layout: magic(8) + 48 header bytes + header checksum(8) = 64, then
  // the payload. For tz: meta_count(8) + offsets_count(8) +
  // offsets(8*(n+1)) + arena_count(8); the next u32 is record 0's levels.
  const std::size_t header_size = 64;
  const std::size_t levels_pos = header_size + 24 + 8 * (n + 1);
  ASSERT_LT(levels_pos + 4, bytes.size());
  bytes[levels_pos] = static_cast<char>(0xEE);  // levels = huge
  // Re-forge both checksums: payload (stored at byte 48, inside the
  // checksummed header span [8, 56)) and then the header's own.
  patch_u64(48, fnv(header_size, bytes.size()));
  patch_u64(56, fnv(8, 56));
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, FuzzTruncationAndBitFlipsAlwaysTyped) {
  // Regression fuzz: every truncation point and every sampled single-bit
  // flip must surface as a typed StoreCorruptionError — never a crash, an
  // out-of-bounds read, or a silently wrong store. Both checksums (header
  // and payload) together cover every byte of the file, so no flip can
  // escape detection.
  const std::string bytes = valid_bytes();
  for (std::size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::stringstream ss(bytes.substr(0, keep));
    EXPECT_THROW(SketchStore::read(ss), StoreCorruptionError)
        << "truncated to " << keep << " bytes";
  }
  for (std::size_t pos = 0; pos < bytes.size(); pos += 3) {
    for (const int bit : {0, 6}) {
      std::string mut = bytes;
      mut[pos] = static_cast<char>(mut[pos] ^ (1 << bit));
      std::stringstream ss(mut);
      EXPECT_THROW(SketchStore::read(ss), StoreCorruptionError)
          << "bit " << bit << " flipped at byte " << pos;
    }
  }
}

class SketchStoreRecovery : public ::testing::Test {
 protected:
  // A TZ store on disk plus the byte-level map needed to aim corruption at
  // a specific node record.
  void SetUp() override {
    graph_ = erdos_renyi(40, 0.1, {1, 5}, 3);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 2;
    engine_ = std::make_unique<SketchEngine>(graph_, cfg);
    store_ = SketchStore::from_engine(*engine_);
    path_ = ::testing::TempDir() + "/dsketch_recovery_test.bin";
    // The byte-offset map below is the fixed-width v2 layout; these tests
    // double as legacy-format recovery coverage (store_v3_test has the v3
    // counterparts).
    store_.save_file(path_, StoreFormat::kV2);
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    // v2 file: 64-byte header, then tz payload meta_count(8) +
    // offsets_count(8) + offsets(8*(n+1)) + arena_count(8) + arena.
    n_ = store_.num_nodes();
    arena_start_ = 64 + 8 + 8 + 8 * (n_ + 1) + 8;
  }

  std::uint64_t offset_of(NodeId u) const {
    const std::size_t pos = 64 + 16 + 8 * u;
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos + i]))
           << (8 * i);
    }
    return x;
  }

  void write_file(const std::string& data) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  Graph graph_;
  std::unique_ptr<SketchEngine> engine_;
  SketchStore store_;
  std::string path_;
  std::string bytes_;
  NodeId n_ = 0;
  std::size_t arena_start_ = 0;
};

TEST_F(SketchStoreRecovery, IntactFileRecoversWithChecksumOk) {
  const SketchStore::Recovery rec = SketchStore::recover_file(path_);
  EXPECT_TRUE(rec.checksum_ok);
  EXPECT_TRUE(rec.quarantined.empty());
  for (NodeId u = 0; u < n_; u += 3) {
    for (NodeId v = u; v < n_; v += 5) {
      EXPECT_EQ(rec.store.query(u, v), store_.query(u, v));
    }
  }
}

TEST_F(SketchStoreRecovery, QuarantinesBrokenRecordAndServesTheRest) {
  // Blow up node 5's record structure (levels count inflated far past the
  // record's actual extent). The strict load must reject the file; the
  // recovery path must quarantine exactly node 5 and keep everyone else
  // answering bit-identically.
  const NodeId victim = 5;
  std::string mut = bytes_;
  const std::size_t levels_pos = arena_start_ + 4 * offset_of(victim);
  mut[levels_pos] = static_cast<char>(0xE8);
  mut[levels_pos + 1] = static_cast<char>(0x03);  // levels = 1000
  write_file(mut);

  EXPECT_THROW(SketchStore::load_file(path_), StoreCorruptionError);
  const SketchStore::Recovery rec = SketchStore::recover_file(path_);
  EXPECT_FALSE(rec.checksum_ok);
  ASSERT_EQ(rec.quarantined, std::vector<NodeId>{victim});
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = u; v < n_; v += 3) {
      if (u == victim || v == victim) continue;
      EXPECT_EQ(rec.store.query(u, v), store_.query(u, v))
          << "pair " << u << "," << v;
    }
  }
  // The quarantined node answers the safe "don't know", never a wrong
  // finite distance.
  EXPECT_EQ(rec.store.query(victim, victim), 0u);
  for (NodeId v = 0; v < n_; ++v) {
    if (v != victim) EXPECT_EQ(rec.store.query(victim, v), kInfDist);
  }
}

TEST_F(SketchStoreRecovery, TruncatedArenaQuarantinesTheLostTail) {
  // Chop the file inside the second-to-last record: the nodes whose
  // records fall past the cut are quarantined, the intact prefix serves.
  const std::size_t cut = arena_start_ + 4 * offset_of(n_ - 2) + 2;
  write_file(bytes_.substr(0, cut));

  EXPECT_THROW(SketchStore::load_file(path_), StoreCorruptionError);
  const SketchStore::Recovery rec = SketchStore::recover_file(path_);
  EXPECT_FALSE(rec.checksum_ok);
  ASSERT_EQ(rec.quarantined, (std::vector<NodeId>{n_ - 2, n_ - 1}));
  for (NodeId u = 0; u + 2 < n_; u += 2) {
    for (NodeId v = u; v + 2 < n_; v += 3) {
      EXPECT_EQ(rec.store.query(u, v), store_.query(u, v));
    }
  }
}

TEST_F(SketchStoreRecovery, HeaderDamageIsUnrecoverable) {
  std::string mut = bytes_;
  mut[2] = 'X';  // inside the magic
  write_file(mut);
  EXPECT_THROW(SketchStore::recover_file(path_), StoreCorruptionError);
}

TEST(SketchStoreRecoveryGraceful, TailTruncationKeepsEarlierLevels) {
  // Graceful stores hold one segment per epsilon level; each level alone
  // is a complete (coarser) oracle. Cutting the file inside the last
  // segment must still recover a serving store whose answers are valid
  // overestimates of the original's.
  const Graph g = erdos_renyi(40, 0.1, {1, 5}, 7);
  BuildConfig cfg;
  cfg.scheme = Scheme::kGraceful;
  cfg.k = 2;
  cfg.epsilon = 0.25;
  const SketchEngine engine(g, cfg);
  const SketchStore store = SketchStore::from_engine(engine);
  ASSERT_GE(store.num_segments(), 2u);
  const std::string path = ::testing::TempDir() + "/dsketch_graceful_rec.bin";
  store.save_file(path);
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 10));
  out.close();

  const SketchStore::Recovery rec = SketchStore::recover_file(path);
  EXPECT_FALSE(rec.checksum_ok);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u; v < g.num_nodes(); v += 4) {
      EXPECT_GE(rec.store.query(u, v), store.query(u, v));
    }
  }
}

TEST(SketchStoreAtomicSave, OverwriteLeavesNoTempAndOldOrNewStore) {
  // save_file over an existing store must go through the temp+rename
  // dance: afterwards the temp file is gone and the target parses clean.
  const Graph g = ring(20, {1, 3}, 11);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  const SketchEngine engine(g, cfg);
  const SketchStore store = SketchStore::from_engine(engine);
  const std::string path = ::testing::TempDir() + "/dsketch_atomic_test.bin";
  store.save_file(path);
  store.save_file(path);  // overwrite in place
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temp file left behind";
  const SketchStore back = SketchStore::load_file(path);
  EXPECT_EQ(back.num_nodes(), store.num_nodes());
}

TEST(SketchStoreProvenance, UnknownEpsilonSurvivesConversion) {
  // A pre-epsilon text file must not come out of a conversion round trip
  // with a fabricated epsilon claim.
  const Graph g = ring(24, {1, 3}, 6);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.25;
  const SketchEngine built(g, cfg);
  std::stringstream ss;
  built.save(ss);
  std::string text = ss.str();
  const auto nl = text.find('\n');
  std::string header = text.substr(0, nl);
  header.resize(header.rfind(' '));  // strip the epsilon token
  std::stringstream old_format(header + text.substr(nl));

  const SketchStore store = SketchStore::from_text(old_format);
  EXPECT_FALSE(store.epsilon_known());
  std::stringstream bin;
  store.write(bin);
  const SketchStore reloaded = SketchStore::read(bin);
  EXPECT_FALSE(reloaded.epsilon_known());
  std::stringstream text2;
  reloaded.to_text(text2);
  // The regenerated header must be the old style again (4 tokens, no
  // epsilon claim), and still load.
  std::string first_line;
  std::getline(text2, first_line);
  EXPECT_EQ(first_line, header);
  std::stringstream full(text2.str());
  EXPECT_FALSE(SketchStore::from_text(full).epsilon_known());

  // A normally saved sketch keeps its recorded epsilon through the same
  // trip.
  std::stringstream fresh;
  built.save(fresh);
  const SketchStore recorded = SketchStore::from_text(fresh);
  EXPECT_TRUE(recorded.epsilon_known());
  EXPECT_DOUBLE_EQ(recorded.epsilon(), 0.25);
}

TEST(SketchStoreFiles, SaveAndLoadFile) {
  const Graph g = ring(30, {1, 4}, 5);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.3;
  const SketchEngine engine(g, cfg);
  const SketchStore store = SketchStore::from_engine(engine);
  const std::string path = ::testing::TempDir() + "/dsketch_store_test.bin";
  store.save_file(path);
  const SketchStore back = SketchStore::load_file(path);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(back.query(u, v), engine.query(u, v));
    }
  }
  EXPECT_THROW(SketchStore::load_file(path + ".missing"), std::runtime_error);
}

TEST(SketchStorePacking, TzLabelOraclePacksAndAnswersIdentically) {
  // A bare TZ label set (the distributed build's output, or a dynamic
  // sketch snapshot) must pack into the store and answer bit-identically.
  const Graph g = erdos_renyi(70, 0.08, {1, 9}, 41);
  const std::uint32_t k = 3;
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 42);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, 42 + bump++);
  }
  const LabelArena labels = build_tz_centralized(g, h);
  const TzLabelOracle oracle(labels, k);
  ASSERT_TRUE(SketchStore::packable(oracle));
  const SketchStore store = SketchStore::from_oracle(oracle);
  EXPECT_EQ(store.scheme(), "tz");
  EXPECT_EQ(store.store_scheme(), Scheme::kThorupZwick);
  EXPECT_EQ(store.k(), k);
  EXPECT_EQ(store.num_nodes(), g.num_nodes());
  // A label set records no build epsilon; the store must not invent one.
  EXPECT_FALSE(store.epsilon_known());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // The packed arena encoding differs from the label view's word count,
    // but it must exist for every node.
    EXPECT_GT(store.size_words(u), 0u) << "node " << u;
    for (NodeId v = u; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(store.query(u, v), oracle.query(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST(SketchStorePacking, TzLabelStoreSurvivesBinaryRoundTrip) {
  const Graph g = grid2d(6, 6, {1, 5}, 43);
  const std::uint32_t k = 2;
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 44);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, 44 + bump++);
  }
  const TzLabelOracle oracle(build_tz_centralized(g, h), k);
  const SketchStore store = SketchStore::from_oracle(oracle);
  std::stringstream ss;
  store.write(ss);
  const SketchStore back = SketchStore::read(ss);
  EXPECT_EQ(back.scheme(), "tz");
  EXPECT_EQ(back.k(), k);
  EXPECT_FALSE(back.epsilon_known());
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(back.query(u, v), oracle.query(u, v));
    }
  }
}

}  // namespace
}  // namespace dsketch
