#include "serve/sketch_store.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "dynamics/incremental.hpp"
#include "graph/generators.hpp"
#include "sketch/tz_centralized.hpp"

namespace dsketch {
namespace {

BuildConfig config_for(Scheme scheme) {
  BuildConfig cfg;
  cfg.scheme = scheme;
  cfg.k = 2;
  cfg.epsilon = 0.25;
  return cfg;
}

class SketchStoreSchemes : public ::testing::TestWithParam<Scheme> {
 protected:
  SketchStoreSchemes()
      : graph_(erdos_renyi(80, 0.08, {1, 9}, 17)),
        engine_(graph_, config_for(GetParam())) {}

  Graph graph_;
  SketchEngine engine_;
};

TEST_P(SketchStoreSchemes, PackedQueriesMatchEngineBitIdentically) {
  const SketchStore store = SketchStore::from_engine(engine_);
  EXPECT_EQ(store.num_nodes(), graph_.num_nodes());
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    for (NodeId v = u; v < graph_.num_nodes(); v += 3) {
      EXPECT_EQ(store.query(u, v), engine_.query(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST_P(SketchStoreSchemes, BinaryRoundTripPreservesEverything) {
  const SketchStore store = SketchStore::from_engine(engine_);
  std::stringstream ss;
  store.write(ss);
  const SketchStore back = SketchStore::read(ss);
  EXPECT_EQ(back.scheme(), store.scheme());
  EXPECT_EQ(back.num_nodes(), store.num_nodes());
  EXPECT_EQ(back.k(), store.k());
  EXPECT_DOUBLE_EQ(back.epsilon(), store.epsilon());
  for (NodeId u = 0; u < graph_.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < graph_.num_nodes(); v += 5) {
      EXPECT_EQ(back.query(u, v), engine_.query(u, v));
    }
  }
}

TEST_P(SketchStoreSchemes, TextConvertersRoundTrip) {
  // engine text -> store must answer like the engine...
  std::stringstream text;
  engine_.save(text);
  const SketchStore store = SketchStore::from_text(text);
  // ...and store -> text must load back into an equivalent engine.
  std::stringstream text2;
  store.to_text(text2);
  const SketchEngine reloaded = SketchEngine::load(text2);
  EXPECT_EQ(reloaded.config().scheme, engine_.config().scheme);
  for (NodeId u = 0; u < graph_.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < graph_.num_nodes(); v += 4) {
      EXPECT_EQ(store.query(u, v), engine_.query(u, v));
      EXPECT_EQ(reloaded.query(u, v), engine_.query(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, SketchStoreSchemes,
                         ::testing::Values(Scheme::kThorupZwick,
                                           Scheme::kSlack, Scheme::kCdg,
                                           Scheme::kGraceful));

class SketchStoreCorruption : public ::testing::Test {
 protected:
  std::string valid_bytes() {
    const Graph g = erdos_renyi(40, 0.1, {1, 5}, 3);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 2;
    const SketchEngine engine(g, cfg);
    std::stringstream ss;
    SketchStore::from_engine(engine).write(ss);
    return ss.str();
  }
};

TEST_F(SketchStoreCorruption, RejectsBadMagic) {
  std::string bytes = valid_bytes();
  bytes[0] = 'X';
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsUnsupportedVersion) {
  std::string bytes = valid_bytes();
  bytes[8] = 99;  // version lives right after the 8-byte magic
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsPayloadBitFlip) {
  std::string bytes = valid_bytes();
  bytes[bytes.size() - 1] ^= 0x40;  // checksum no longer matches
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsTruncation) {
  const std::string bytes = valid_bytes();
  for (const std::size_t keep : {std::size_t{4}, std::size_t{40},
                                 bytes.size() / 2, bytes.size() - 1}) {
    std::stringstream ss(bytes.substr(0, keep));
    EXPECT_THROW(SketchStore::read(ss), std::runtime_error) << keep << " bytes";
  }
}

TEST_F(SketchStoreCorruption, RejectsEmptyStream) {
  std::stringstream ss;
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST_F(SketchStoreCorruption, RejectsChecksumValidStructuralCorruption) {
  // The checksum only detects accidental corruption; a crafted file can
  // recompute it. Inflate the first TZ record's level count and patch
  // the checksum: the structural validator must still reject the file
  // (otherwise the first query would read out of bounds).
  std::string bytes = valid_bytes();
  const auto u32_at = [&](std::size_t pos) {
    return static_cast<std::uint32_t>(
        static_cast<std::uint8_t>(bytes[pos]) |
        (static_cast<std::uint8_t>(bytes[pos + 1]) << 8) |
        (static_cast<std::uint8_t>(bytes[pos + 2]) << 16) |
        (static_cast<std::uint8_t>(bytes[pos + 3]) << 24));
  };
  const std::uint32_t n = u32_at(16);  // magic(8) + version + scheme
  // Payload layout for tz: meta_count(8) + offsets_count(8) +
  // offsets(8*(n+1)) + arena_count(8); the next u32 is record 0's levels.
  const std::size_t header_size = 56;
  const std::size_t levels_pos = header_size + 24 + 8 * (n + 1);
  ASSERT_LT(levels_pos + 4, bytes.size());
  bytes[levels_pos] = static_cast<char>(0xEE);  // levels = huge
  // Recompute FNV-1a 64 over the payload and patch the header checksum.
  std::uint64_t hash = 14695981039346656037ULL;
  for (std::size_t i = header_size; i < bytes.size(); ++i) {
    hash ^= static_cast<std::uint8_t>(bytes[i]);
    hash *= 1099511628211ULL;
  }
  for (int i = 0; i < 8; ++i) {
    bytes[48 + i] = static_cast<char>((hash >> (8 * i)) & 0xff);
  }
  std::stringstream ss(bytes);
  EXPECT_THROW(SketchStore::read(ss), std::runtime_error);
}

TEST(SketchStoreProvenance, UnknownEpsilonSurvivesConversion) {
  // A pre-epsilon text file must not come out of a conversion round trip
  // with a fabricated epsilon claim.
  const Graph g = ring(24, {1, 3}, 6);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.25;
  const SketchEngine built(g, cfg);
  std::stringstream ss;
  built.save(ss);
  std::string text = ss.str();
  const auto nl = text.find('\n');
  std::string header = text.substr(0, nl);
  header.resize(header.rfind(' '));  // strip the epsilon token
  std::stringstream old_format(header + text.substr(nl));

  const SketchStore store = SketchStore::from_text(old_format);
  EXPECT_FALSE(store.epsilon_known());
  std::stringstream bin;
  store.write(bin);
  const SketchStore reloaded = SketchStore::read(bin);
  EXPECT_FALSE(reloaded.epsilon_known());
  std::stringstream text2;
  reloaded.to_text(text2);
  // The regenerated header must be the old style again (4 tokens, no
  // epsilon claim), and still load.
  std::string first_line;
  std::getline(text2, first_line);
  EXPECT_EQ(first_line, header);
  std::stringstream full(text2.str());
  EXPECT_FALSE(SketchStore::from_text(full).epsilon_known());

  // A normally saved sketch keeps its recorded epsilon through the same
  // trip.
  std::stringstream fresh;
  built.save(fresh);
  const SketchStore recorded = SketchStore::from_text(fresh);
  EXPECT_TRUE(recorded.epsilon_known());
  EXPECT_DOUBLE_EQ(recorded.epsilon(), 0.25);
}

TEST(SketchStoreFiles, SaveAndLoadFile) {
  const Graph g = ring(30, {1, 4}, 5);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.3;
  const SketchEngine engine(g, cfg);
  const SketchStore store = SketchStore::from_engine(engine);
  const std::string path = ::testing::TempDir() + "/dsketch_store_test.bin";
  store.save_file(path);
  const SketchStore back = SketchStore::load_file(path);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(back.query(u, v), engine.query(u, v));
    }
  }
  EXPECT_THROW(SketchStore::load_file(path + ".missing"), std::runtime_error);
}

TEST(SketchStorePacking, TzLabelOraclePacksAndAnswersIdentically) {
  // A bare TZ label set (the distributed build's output, or a dynamic
  // sketch snapshot) must pack into the store and answer bit-identically.
  const Graph g = erdos_renyi(70, 0.08, {1, 9}, 41);
  const std::uint32_t k = 3;
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 42);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, 42 + bump++);
  }
  const std::vector<TzLabel> labels = build_tz_centralized(g, h);
  const TzLabelOracle oracle(labels, k);
  ASSERT_TRUE(SketchStore::packable(oracle));
  const SketchStore store = SketchStore::from_oracle(oracle);
  EXPECT_EQ(store.scheme(), "tz");
  EXPECT_EQ(store.store_scheme(), Scheme::kThorupZwick);
  EXPECT_EQ(store.k(), k);
  EXPECT_EQ(store.num_nodes(), g.num_nodes());
  // A label set records no build epsilon; the store must not invent one.
  EXPECT_FALSE(store.epsilon_known());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // The packed arena encoding differs from the label view's word count,
    // but it must exist for every node.
    EXPECT_GT(store.size_words(u), 0u) << "node " << u;
    for (NodeId v = u; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(store.query(u, v), oracle.query(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST(SketchStorePacking, TzLabelStoreSurvivesBinaryRoundTrip) {
  const Graph g = grid2d(6, 6, {1, 5}, 43);
  const std::uint32_t k = 2;
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 44);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, 44 + bump++);
  }
  const TzLabelOracle oracle(build_tz_centralized(g, h), k);
  const SketchStore store = SketchStore::from_oracle(oracle);
  std::stringstream ss;
  store.write(ss);
  const SketchStore back = SketchStore::read(ss);
  EXPECT_EQ(back.scheme(), "tz");
  EXPECT_EQ(back.k(), k);
  EXPECT_FALSE(back.epsilon_known());
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(back.query(u, v), oracle.query(u, v));
    }
  }
}

}  // namespace
}  // namespace dsketch
