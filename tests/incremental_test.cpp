#include "dynamics/incremental.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dynamics/failure_model.hpp"
#include "dynamics/update_stream.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

Graph base_graph(NodeId n = 48) { return erdos_renyi(n, 0.12, {1, 8}, 19); }

/// True distance check over every pair against a snapshot oracle.
void expect_one_sided(const Graph& g, const DistanceOracle& oracle) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::vector<Dist> truth = dijkstra(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      EXPECT_GE(oracle.query(u, v), truth[v])
          << "underestimate for (" << u << ", " << v << ")";
    }
  }
}

TEST(TzLabelOracle, MatchesTzQueryAndReportsCapabilities) {
  const Graph g = base_graph();
  TzDynamicSketch sketch(g, 2, 7);
  const std::shared_ptr<const DistanceOracle> oracle = sketch.snapshot();
  EXPECT_EQ(oracle->num_nodes(), g.num_nodes());
  EXPECT_EQ(oracle->scheme(), "tz");
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = 0; v < g.num_nodes(); v += 5) {
      EXPECT_EQ(oracle->query(u, v),
                tz_query(sketch.labels().view(u), sketch.labels().view(v)));
    }
  }
  const Capabilities caps = oracle->capabilities();
  EXPECT_TRUE(caps.supports_paths);
  EXPECT_FALSE(caps.supports_save);
  EXPECT_FALSE(caps.build_cost_available);
  EXPECT_FALSE(caps.symmetric);  // TZ pivot walk is orientation-dependent
}

TEST(TzDynamicSketch, FreshBuildIsExactPerEntryAndNeverUnderestimates) {
  const Graph g = base_graph();
  TzDynamicSketch sketch(g, 3, 7);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::vector<Dist> truth = dijkstra(g, u);
    const LabelView label = sketch.labels().view(u);
    for (std::uint32_t i = 0; i < label.levels; ++i) {
      const DistKey& p = label.pivot(i);
      if (p.id == kInvalidNode) continue;
      EXPECT_EQ(p.dist, truth[p.id]);
    }
    for (std::uint32_t j = 0; j < label.count; ++j) {
      const BunchEntry& e = label.bunch[j];
      EXPECT_EQ(e.dist, truth[e.node]);
    }
  }
  expect_one_sided(g, *sketch.snapshot());
}

TEST(TzDynamicSketch, RepairKeepsEntriesExactUnderInsertsAndDecreases) {
  // Hand-built pure-decrease churn (inserts + weight decreases only —
  // the repairable class): after every repair, each stored label
  // distance must equal the exact distance on the updated graph, and
  // the one-sided guarantee must hold throughout.
  const Graph g = base_graph();
  std::vector<Edge> edges = g.edges();
  TzDynamicSketch sketch(g, 2, 7);
  Rng rng(23);
  Graph current = g;
  std::size_t applied = 0;
  for (int i = 0; i < 40; ++i) {
    EdgeUpdate update;
    const bool decrease = rng.bernoulli(0.5);
    if (decrease) {
      // Pick an edge with weight > 1 and shrink it.
      const std::size_t start = rng.below(edges.size());
      std::size_t j = start;
      while (edges[j].weight <= 1) {
        j = (j + 1) % edges.size();
        if (j == start) break;
      }
      if (edges[j].weight <= 1) continue;
      update.kind = UpdateKind::kReweight;
      update.u = edges[j].u;
      update.v = edges[j].v;
      update.old_weight = edges[j].weight;
      update.weight = static_cast<Weight>(
          rng.range(1, static_cast<std::int64_t>(edges[j].weight) - 1));
      edges[j].weight = update.weight;
    } else {
      const auto u = static_cast<NodeId>(rng.below(g.num_nodes()));
      const auto v = static_cast<NodeId>(rng.below(g.num_nodes()));
      if (u == v) continue;
      bool exists = false;
      for (const Edge& e : edges) {
        if ((e.u == std::min(u, v)) && (e.v == std::max(u, v))) {
          exists = true;
          break;
        }
      }
      if (exists) continue;
      update.kind = UpdateKind::kInsert;
      update.u = std::min(u, v);
      update.v = std::max(u, v);
      update.weight = static_cast<Weight>(rng.range(1, 8));
      edges.push_back({update.u, update.v, update.weight});
    }
    current = Graph::from_edges(g.num_nodes(), edges);
    ASSERT_TRUE(is_distance_decrease(update));
    ASSERT_TRUE(sketch.apply(current, update));
    ++applied;
  }
  ASSERT_GT(applied, 15u);
  EXPECT_EQ(sketch.unrepaired_since_rebuild(), 0u);

  for (NodeId u = 0; u < current.num_nodes(); ++u) {
    const std::vector<Dist> truth = dijkstra(current, u);
    const LabelView label = sketch.labels().view(u);
    for (std::uint32_t i = 0; i < label.levels; ++i) {
      const DistKey& p = label.pivot(i);
      if (p.id == kInvalidNode) continue;
      EXPECT_EQ(p.dist, truth[p.id]) << "pivot at node " << u;
    }
    for (std::uint32_t j = 0; j < label.count; ++j) {
      const BunchEntry& e = label.bunch[j];
      EXPECT_EQ(e.dist, truth[e.node])
          << "bunch entry (" << u << " -> " << e.node << ")";
    }
  }
  expect_one_sided(current, *sketch.snapshot());
}

TEST(TzDynamicSketch, RepairOnlyTightensEstimates) {
  const Graph g = base_graph();
  UpdateStreamConfig cfg;
  cfg.delete_weight = 0;
  cfg.reweight_weight = 0;  // pure inserts
  cfg.seed = 31;
  UpdateStream stream(g, cfg);
  TzDynamicSketch stale(g, 2, 7);
  TzDynamicSketch repaired(g, 2, 7);  // same seed: identical labels
  for (int i = 0; i < 25; ++i) {
    const EdgeUpdate update = stream.next();
    ASSERT_TRUE(repaired.apply(stream.graph(), update));
  }
  const auto stale_oracle = stale.snapshot();
  const auto repaired_oracle = repaired.snapshot();
  std::size_t strictly_tighter = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const Dist rs = repaired_oracle->query(u, v);
      const Dist ss = stale_oracle->query(u, v);
      EXPECT_LE(rs, ss);
      if (rs < ss) ++strictly_tighter;
    }
  }
  // 25 inserts into a 48-node graph must shorten something.
  EXPECT_GT(strictly_tighter, 0u);
  EXPECT_GT(repaired.stats().entries_improved, 0u);
}

TEST(TzDynamicSketch, DeletesAreUnrepairableUntilRebuild) {
  const Graph g = base_graph();
  UpdateStreamConfig cfg;
  cfg.insert_weight = 0;
  cfg.reweight_weight = 0;  // pure deletes
  cfg.seed = 13;
  UpdateStream stream(g, cfg);
  TzDynamicSketch sketch(g, 2, 7);
  for (int i = 0; i < 12; ++i) {
    const EdgeUpdate update = stream.next();
    EXPECT_FALSE(sketch.apply(stream.graph(), update));
  }
  EXPECT_EQ(sketch.unrepaired_since_rebuild(), 12u);
  EXPECT_EQ(sketch.stats().unrepairable, 12u);

  // The stale sketch underestimates on the degraded graph ...
  const auto stale = sketch.snapshot();
  const StalenessReport before = evaluate_staleness(
      stream.graph(),
      [&stale](NodeId u, NodeId v) { return stale->query(u, v); }, 8, 3);
  // (12 deletions from a 48-node graph: some estimate should now route
  // through a dead edge — if not, the graph was too redundant and the
  // test would be vacuous.)
  EXPECT_GT(before.underestimates, 0u);

  // ... and a rebuild clears the debt and the violations.
  sketch.rebuild(stream.graph(), 99);
  EXPECT_EQ(sketch.unrepaired_since_rebuild(), 0u);
  EXPECT_EQ(sketch.stats().rebuilds, 1u);
  expect_one_sided(stream.graph(), *sketch.snapshot());
}

TEST(RebuildPolicy, UpdateCountBudgetFires) {
  const Graph g = base_graph(24);
  TzDynamicSketch sketch(g, 2, 7);
  const auto oracle = sketch.snapshot();
  RebuildPolicyConfig cfg;
  cfg.max_updates = 5;
  RebuildPolicy policy(cfg);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(policy.note_update(g, *oracle, true));
  }
  EXPECT_TRUE(policy.note_update(g, *oracle, true));
  policy.note_rebuilt();
  EXPECT_EQ(policy.updates_since_rebuild(), 0u);
  EXPECT_FALSE(policy.note_update(g, *oracle, true));
}

TEST(RebuildPolicy, UnrepairedBudgetFiresOnlyOnUnrepairedUpdates) {
  const Graph g = base_graph(24);
  TzDynamicSketch sketch(g, 2, 7);
  const auto oracle = sketch.snapshot();
  RebuildPolicyConfig cfg;
  cfg.max_unrepaired = 3;
  RebuildPolicy policy(cfg);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(policy.note_update(g, *oracle, /*repaired=*/true));
  }
  EXPECT_FALSE(policy.note_update(g, *oracle, false));
  EXPECT_FALSE(policy.note_update(g, *oracle, false));
  EXPECT_TRUE(policy.note_update(g, *oracle, false));
}

TEST(RebuildPolicy, ProbeTriggersOnUnderestimateRate) {
  // Serve a sketch built for the healthy graph against a heavily
  // degraded one: the probed underestimate rate must cross a tiny
  // threshold and fire.
  const Graph g = base_graph();
  TzDynamicSketch sketch(g, 2, 7);
  const auto stale = sketch.snapshot();
  const FailurePlan plan = sample_edge_failures(g, 0.3, 5);
  const Graph degraded = apply_failures(g, plan);

  RebuildPolicyConfig cfg;
  cfg.max_underestimate_rate = 1e-6;
  cfg.probe_every = 1;
  cfg.probe_sources = 8;
  RebuildPolicy policy(cfg);
  EXPECT_TRUE(policy.note_update(degraded, *stale, false));
  EXPECT_EQ(policy.probes_run(), 1u);
  EXPECT_GT(policy.last_probed_rate(), 0.0);

  // A fresh sketch for the degraded graph probes clean.
  TzDynamicSketch fresh(degraded, 2, 7);
  const auto fresh_oracle = fresh.snapshot();
  RebuildPolicy policy2(cfg);
  EXPECT_FALSE(policy2.note_update(degraded, *fresh_oracle, false));
  EXPECT_EQ(policy2.last_probed_rate(), 0.0);
}

}  // namespace
}  // namespace dsketch
