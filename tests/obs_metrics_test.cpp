#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dsketch::obs {
namespace {

TEST(LatencyHistogram, BucketMathIsMonotoneAndTight) {
  // Buckets never decrease as values grow, and the representative of a
  // value's bucket is within the design bound of the value itself.
  constexpr double kMaxRelError = 1.0 / (2 << LatencyHistogram::kSubBits);
  double prev_bucket = 0;
  for (double v = 1e-6; v < 1e11; v *= 1.07) {
    const std::size_t b = LatencyHistogram::bucket_of(v);
    ASSERT_GE(b, prev_bucket);
    prev_bucket = static_cast<double>(b);
    if (v >= LatencyHistogram::kMinValue && v < LatencyHistogram::kMaxValue) {
      const double rep = LatencyHistogram::bucket_value(b);
      EXPECT_LE(std::abs(rep - v) / v, kMaxRelError)
          << "v=" << v << " rep=" << rep;
    }
  }
}

TEST(LatencyHistogram, NonPositiveAndNanClampToLowestBucket) {
  LatencyHistogram h;
  h.record(0.0);
  h.record(-3.5);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 3u);
}

TEST(LatencyHistogram, ExactMomentsAndExtremes) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50), 0.0);
  h.record(2.0);
  h.record(10.0);
  h.record(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 16.0 / 3.0);
  // min/max are exact recorded values, not bucket representatives.
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
}

/// Shared accuracy check: percentiles of the histogram must agree with
/// exact percentiles of the raw samples within 2% (the acceptance
/// bound; the bucket design targets ~1%).
void expect_percentiles_close(const std::vector<double>& samples,
                              const char* what) {
  LatencyHistogram h;
  for (const double s : samples) h.record(s);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (const double pct : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    const double exact = percentile_sorted(sorted, pct);
    const double est = h.percentile(pct);
    ASSERT_GT(exact, 0.0);
    EXPECT_LE(std::abs(est - exact) / exact, 0.02)
        << what << " p" << pct << ": exact=" << exact << " est=" << est;
  }
}

TEST(LatencyHistogram, AccuracyUniform) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(1.0 + 999.0 * rng.uniform());
  }
  expect_percentiles_close(samples, "uniform");
}

TEST(LatencyHistogram, AccuracyZipfLike) {
  // Heavy-tailed: latencies spanning several orders of magnitude.
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(0.5 * std::pow(10.0, 4.0 * rng.uniform()));
  }
  expect_percentiles_close(samples, "zipf");
}

TEST(LatencyHistogram, AccuracyBimodal) {
  // Cache-hit vs oracle-miss shape: two tight modes far apart.
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double base = rng.uniform() < 0.8 ? 2.0 : 300.0;
    samples.push_back(base * (1.0 + 0.05 * rng.uniform()));
  }
  expect_percentiles_close(samples, "bimodal");
}

TEST(LatencyHistogram, MergeMatchesSingleWriterExactly) {
  // Recording a multiset split across threads and merging must equal
  // recording it all into one histogram: bucket counts, count, sum,
  // min, max — bit-for-bit (addition of identical doubles in any
  // grouping here, since each value is added once per histogram).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<double>> per_thread(kThreads);
  Rng rng(7);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      per_thread[t].push_back(0.1 * std::pow(10.0, 3.0 * rng.uniform()));
    }
  }

  std::vector<LatencyHistogram> parts(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const double v : per_thread[t]) parts[t].record(v);
    });
  }
  for (std::thread& th : threads) th.join();

  LatencyHistogram merged;
  for (const LatencyHistogram& p : parts) merged.merge(p);

  LatencyHistogram reference;
  for (const auto& vs : per_thread) {
    for (const double v : vs) reference.record(v);
  }

  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  EXPECT_NEAR(merged.sum(), reference.sum(), 1e-6 * reference.sum());
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    ASSERT_EQ(merged.bucket_count(b), reference.bucket_count(b))
        << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(merged.percentile(50), reference.percentile(50));
  EXPECT_DOUBLE_EQ(merged.percentile(99), reference.percentile(99));
}

TEST(LatencyHistogram, ConcurrentRecordAndSnapshot) {
  // Races record() against summary()/merge() readers; correctness here
  // is "no torn state and sane invariants", and under
  // -DDSKETCH_SANITIZE=thread this is the TSan probe for the whole
  // metrics core.
  LatencyHistogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < 20000; ++i) {
        h.record(1.0 + 100.0 * rng.uniform());
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const Summary s = h.summary();
      EXPECT_LE(s.min, s.max + 1e-12);
      LatencyHistogram copy;
      copy.merge(h);
      EXPECT_LE(copy.count(), 4u * 20000u);
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(h.count(), 4u * 20000u);
  const Summary s = h.summary();
  EXPECT_GE(s.min, 1.0);
  EXPECT_LE(s.max, 101.0);
  EXPECT_GE(s.p99, s.p50);
}

TEST(LatencyHistogram, ResetAndCopySemantics) {
  LatencyHistogram h;
  h.record(5.0);
  h.record(50.0);
  LatencyHistogram copy = h;  // snapshot copy
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0.0);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.min(), 5.0);
  EXPECT_DOUBLE_EQ(copy.max(), 50.0);
  h = copy;
  EXPECT_EQ(h.count(), 2u);
}

TEST(MetricsRegistry, StableRefsAndExporters) {
  MetricsRegistry reg;
  Counter& c = reg.counter("requests_total");
  c.inc();
  c.inc(2);
  EXPECT_EQ(&c, &reg.counter("requests_total"));
  EXPECT_EQ(reg.counter("requests_total").value(), 3u);
  reg.gauge("hit_rate").set(0.75);
  LatencyHistogram& h = reg.histogram("latency_us");
  h.record(10.0);
  h.record(20.0);

  std::ostringstream json;
  reg.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"metric\":\"requests_total\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(j.find("\"value\":3"), std::string::npos);
  EXPECT_NE(j.find("\"metric\":\"hit_rate\""), std::string::npos);
  EXPECT_NE(j.find("\"metric\":\"latency_us\""), std::string::npos);
  EXPECT_NE(j.find("\"count\":2"), std::string::npos);
  EXPECT_NE(j.find("\"p99\""), std::string::npos);

  std::ostringstream prom;
  reg.write_prometheus(prom);
  const std::string p = prom.str();
  EXPECT_NE(p.find("# TYPE requests_total counter"), std::string::npos);
  EXPECT_NE(p.find("requests_total 3"), std::string::npos);
  EXPECT_NE(p.find("# TYPE hit_rate gauge"), std::string::npos);
  EXPECT_NE(p.find("# TYPE latency_us summary"), std::string::npos);
  EXPECT_NE(p.find("latency_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(p.find("latency_us_count 2"), std::string::npos);

  reg.clear();
  std::ostringstream empty;
  reg.write_json(empty);
  EXPECT_TRUE(empty.str().empty());
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  MetricsRegistry& a = MetricsRegistry::global();
  MetricsRegistry& b = MetricsRegistry::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dsketch::obs
