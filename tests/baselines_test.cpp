#include <gtest/gtest.h>

#include "baselines/exact_oracle.hpp"
#include "baselines/landmark.hpp"
#include "baselines/vivaldi.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {
namespace {

TEST(ExactOracle, MatchesDijkstra) {
  const Graph g = erdos_renyi(50, 0.1, {1, 9}, 3);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    const auto d = dijkstra(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(oracle.query(u, v), d[v]);
    }
  }
}

TEST(ExactOracle, QuadraticSize) {
  const Graph g = ring(32, {1, 1}, 0);
  const ExactOracle oracle(g);
  EXPECT_EQ(oracle.size_words(0), 32u);
}

TEST(Landmark, NeverUnderestimates) {
  const Graph g = erdos_renyi(80, 0.07, {1, 9}, 5);
  const LandmarkSketchSet lm(g, 8, 7);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      EXPECT_GE(lm.query(u, v), oracle.query(u, v));
    }
  }
}

TEST(Landmark, LandmarksDistinct) {
  const Graph g = ring(40, {1, 1}, 0);
  const LandmarkSketchSet lm(g, 10, 3);
  std::set<NodeId> uniq(lm.landmarks().begin(), lm.landmarks().end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(Landmark, ExactFromALandmark) {
  const Graph g = grid2d(6, 6, {1, 4}, 2);
  const LandmarkSketchSet lm(g, 5, 9);
  const ExactOracle oracle(g);
  const NodeId l = lm.landmarks()[0];
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == l) continue;
    EXPECT_EQ(lm.query(l, v), oracle.query(l, v));
  }
}

TEST(Landmark, SizeWordsAccounting) {
  const Graph g = ring(20, {1, 1}, 0);
  const LandmarkSketchSet lm(g, 6, 1);
  EXPECT_EQ(lm.size_words(0), 12u);
}

TEST(Vivaldi, EmbedsGeometricGraphsWell) {
  // Random geometric graphs are near-Euclidean: Vivaldi should achieve
  // modest distortion on most pairs.
  const Graph g = random_geometric(150, 0.15, 3, true);
  VivaldiConfig cfg;
  cfg.rounds = 48;
  const VivaldiCoordinates viv(g, cfg);
  const ExactOracle oracle(g);
  SampleSet distortion;
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      const double d = static_cast<double>(oracle.query(u, v));
      const double e =
          std::max<double>(1.0, static_cast<double>(viv.query(u, v)));
      distortion.add(std::max(e / d, d / e));
    }
  }
  EXPECT_LT(distortion.p(50), 2.0);
}

TEST(Vivaldi, DeterministicForSeed) {
  const Graph g = random_geometric(60, 0.2, 5, true);
  VivaldiConfig cfg;
  cfg.rounds = 8;
  const VivaldiCoordinates a(g, cfg), b(g, cfg);
  for (NodeId u = 0; u < g.num_nodes(); u += 9) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 11) {
      EXPECT_EQ(a.query(u, v), b.query(u, v));
    }
  }
}

TEST(Vivaldi, SizeIsDimension) {
  const Graph g = ring(16, {1, 1}, 0);
  VivaldiConfig cfg;
  cfg.dim = 4;
  cfg.rounds = 2;
  const VivaldiCoordinates viv(g, cfg);
  EXPECT_EQ(viv.size_words(0), 4u);
}

TEST(Vivaldi, CanUnderestimate) {
  // Unlike the sketches, coordinates give no one-sided guarantee; on a
  // ring with chords some pair must be underestimated (or grossly off).
  const Graph g = ring_with_chords(100, 40, 20, 1, 7);
  VivaldiConfig cfg;
  cfg.rounds = 32;
  const VivaldiCoordinates viv(g, cfg);
  const ExactOracle oracle(g);
  std::size_t under = 0;
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      if (viv.query(u, v) < oracle.query(u, v)) ++under;
    }
  }
  EXPECT_GT(under, 0u);
}

}  // namespace
}  // namespace dsketch
