#include <gtest/gtest.h>

#include "congest/bfs_tree.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"

namespace dsketch {
namespace {

void check_tree(const Graph& g, const BfsTree& t) {
  const NodeId n = g.num_nodes();
  // Leader is the max id (flood-max).
  EXPECT_EQ(t.root, n - 1);
  // Hops match BFS depths from the root.
  const auto hops = hop_bfs(g, t.root);
  std::size_t child_count = 0;
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(t.hops[u], hops[u]);
    child_count += t.child_edges[u].size();
    if (u == t.root) {
      EXPECT_EQ(t.parent[u], kInvalidNode);
    } else {
      ASSERT_NE(t.parent[u], kInvalidNode);
      // Parent is one hop closer to the root.
      EXPECT_EQ(t.hops[t.parent[u]] + 1, t.hops[u]);
      // parent_edge actually points at the parent.
      EXPECT_EQ(g.neighbors(u)[t.parent_edge[u]].to, t.parent[u]);
    }
  }
  // Exactly n-1 tree edges, counted at the parents.
  EXPECT_EQ(child_count, static_cast<std::size_t>(n) - 1);
}

TEST(BfsTree, PathGraph) {
  const Graph g = path(10, {1, 1}, 0);
  check_tree(g, build_bfs_tree(g).tree);
}

TEST(BfsTree, RandomGraph) {
  const Graph g = erdos_renyi(150, 0.04, {1, 9}, 3);
  check_tree(g, build_bfs_tree(g).tree);
}

TEST(BfsTree, StarGraphDepthOne) {
  const Graph g = star(20, {1, 1}, 0);
  const BfsTree t = build_bfs_tree(g).tree;
  // root = 19 (a leaf of the star): hub at depth 1, others at 2.
  EXPECT_EQ(t.root, 19u);
  EXPECT_EQ(t.depth(), 2u);
}

TEST(BfsTree, CostScalesWithDiameter) {
  const Graph g = path(64, {1, 1}, 0);
  const BfsTreeRun run = build_bfs_tree(g);
  // Flood-max needs ~2 sweeps of the path plus the claim round.
  EXPECT_LE(run.stats.rounds, 5u * 64);
  EXPECT_GE(run.stats.rounds, 63u);
}

TEST(BfsTree, WeightsIgnored) {
  // BFS layering uses hops, not weights: heavy edges must not matter.
  const Graph g = ring(12, {100, 1000}, 7);
  const BfsTree t = build_bfs_tree(g).tree;
  EXPECT_EQ(t.depth(), 6u);
}

class BfsTreeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BfsTreeSweep, ValidOnRandomTopologies) {
  const std::uint64_t seed = GetParam();
  check_tree(erdos_renyi(80, 0.06, {1, 5}, seed),
             build_bfs_tree(erdos_renyi(80, 0.06, {1, 5}, seed)).tree);
  check_tree(random_tree(60, {1, 5}, seed),
             build_bfs_tree(random_tree(60, {1, 5}, seed)).tree);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BfsTreeSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dsketch
