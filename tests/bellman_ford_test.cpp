#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "congest/bellman_ford.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

TEST(MultiSourceBf, MatchesDijkstraPerSource) {
  const Graph g = erdos_renyi(80, 0.06, {1, 20}, 11);
  const std::vector<NodeId> sources{0, 17, 42};
  const MultiSourceBfResult r = run_multi_source_bf(g, sources);
  for (const NodeId s : sources) {
    const auto exact = dijkstra(g, s);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      const auto it = r.dist[u].find(s);
      ASSERT_NE(it, r.dist[u].end()) << "node " << u << " missed source " << s;
      EXPECT_EQ(it->second, exact[u]);
    }
  }
}

TEST(MultiSourceBf, OnlySourcesAppear) {
  const Graph g = ring(20, {1, 4}, 2);
  const MultiSourceBfResult r = run_multi_source_bf(g, {3, 9});
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(r.dist[u].size(), 2u);
  }
}

TEST(MultiSourceBf, RoundsBoundedBySourcesTimesS) {
  const Graph g = path(50, {1, 1}, 0);
  const MultiSourceBfResult r = run_multi_source_bf(g, {0, 49});
  // 2 sources, S = 49; round-robin multiplexing => <= ~2*S + slack.
  EXPECT_LE(r.stats.rounds, 4u * 49 + 10);
}

TEST(SuperSourceBf, NearestSourceAndOwner) {
  const Graph g = erdos_renyi(100, 0.05, {1, 9}, 5);
  const std::vector<NodeId> sources{7, 70};
  const SuperSourceBfResult r = run_super_source_bf(g, sources);
  const MultiSourceResult exact = multi_source_dijkstra(g, sources);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(r.dist[u], exact.dist[u]);
    EXPECT_EQ(r.owner[u], exact.owner[u]);
  }
}

TEST(SuperSourceBf, ParentEdgesFormVoronoiForest) {
  const Graph g = grid2d(8, 8, {1, 3}, 9);
  const std::vector<NodeId> sources{0, 63};
  const SuperSourceBfResult r = run_super_source_bf(g, sources);
  std::size_t claimed = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    claimed += r.child_edges[u].size();
    if (r.parent_edge[u] == SuperSourceBfResult::kNoParent) {
      EXPECT_EQ(r.owner[u], u);  // only sources lack parents
      continue;
    }
    const NodeId p = g.neighbors(u)[r.parent_edge[u]].to;
    // Parent is strictly closer (or equal with smaller owner) and shares
    // the owner: the defining Voronoi-tree invariants.
    EXPECT_EQ(r.owner[p], r.owner[u]);
    EXPECT_EQ(r.dist[p] + g.neighbors(u)[r.parent_edge[u]].weight, r.dist[u]);
  }
  EXPECT_EQ(claimed, static_cast<std::size_t>(g.num_nodes()) - sources.size());
}

TEST(SuperSourceBf, SingleSourceIsSssp) {
  const Graph g = random_tree(40, {1, 6}, 3);
  const SuperSourceBfResult r = run_super_source_bf(g, {5});
  const auto exact = dijkstra(g, 5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(r.dist[u], exact[u]);
    EXPECT_EQ(r.owner[u], 5u);
  }
}

TEST(OnlineDistance, RoundsAtLeastEccentricityHops) {
  // On a path the online BF from an endpoint needs >= n-1 rounds: this is
  // the Omega(S) cost of query-time distance computation (§2.1).
  const Graph g = path(40, {1, 1}, 0);
  const SimStats stats = online_distance_rounds(g, 0);
  EXPECT_GE(stats.rounds, 39u);
}

class MultiSourceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(MultiSourceSweep, AgreesWithDijkstra) {
  const auto [seed, num_sources] = GetParam();
  const Graph g = random_graph_nm(60, 150, {1, 15}, seed);
  Rng rng(seed * 7 + 1);
  std::vector<NodeId> sources;
  for (int i = 0; i < num_sources; ++i) {
    sources.push_back(static_cast<NodeId>(rng.below(g.num_nodes())));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  const MultiSourceBfResult r = run_multi_source_bf(g, sources);
  for (const NodeId s : sources) {
    const auto exact = dijkstra(g, s);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(r.dist[u].at(s), exact[u]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MultiSourceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(1, 4, 9)));

}  // namespace
}  // namespace dsketch
