#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "sketch/path_extraction.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(n, k, seed + bump++);
  }
  return h;
}

TEST(PathExtraction, RouteToBunchMemberIsExactShortestPath) {
  const Graph g = erdos_renyi(80, 0.07, {1, 9}, 5);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 7);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    const LabelView lu = r.labels.view(u);
    for (std::uint32_t j = 0; j < lu.count; ++j) {
      const BunchEntry& e = lu.bunch[j];
      const auto path = route_to_target(g, r.routing, u, e.node);
      ASSERT_GE(path.size(), 1u);
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), e.node);
      // The forwarding chain realizes the exact bunch distance.
      EXPECT_EQ(path_weight(g, path), e.dist);
      EXPECT_EQ(e.dist, oracle.query(u, e.node));
    }
  }
}

TEST(PathExtraction, SelfRouteIsTrivial) {
  const Graph g = ring(12, {1, 3}, 1);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 3);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const auto path = route_to_target(g, r.routing, 4, 4);
  EXPECT_EQ(path, std::vector<NodeId>{4});
}

TEST(PathExtraction, EndToEndPathMatchesQueryEstimate) {
  const Graph g = erdos_renyi(100, 0.06, {1, 9}, 11);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 13);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      const ApproxPath p =
          extract_approximate_path(g, r.labels, r.routing, u, v);
      ASSERT_GE(p.nodes.size(), 2u);
      EXPECT_EQ(p.nodes.front(), u);
      EXPECT_EQ(p.nodes.back(), v);
      // The realized path weight equals the sketch estimate exactly.
      EXPECT_EQ(p.weight, tz_query(r.labels.view(u), r.labels.view(v)));
    }
  }
}

TEST(PathExtraction, PathStretchBounded) {
  const std::uint32_t k = 3;
  const Graph g = grid2d(9, 9, {1, 12}, 3);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, 5);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 7) {
      const ApproxPath p =
          extract_approximate_path(g, r.labels, r.routing, u, v);
      EXPECT_LE(p.weight, (2 * k - 1) * oracle.query(u, v));
      EXPECT_GE(p.weight, oracle.query(u, v));
    }
  }
}

TEST(PathExtraction, WitnessIsInBothBunchesOrPivotChain) {
  const Graph g = random_tree(60, {1, 7}, 9);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 11);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const ApproxPath p = extract_approximate_path(g, r.labels, r.routing, 3, 42);
  ASSERT_NE(p.witness, kInvalidNode);
  // The witness must appear on the extracted path.
  EXPECT_NE(std::find(p.nodes.begin(), p.nodes.end(), p.witness),
            p.nodes.end());
}

TEST(PathExtraction, SameNode) {
  const Graph g = ring(10, {1, 1}, 0);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 1);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const ApproxPath p = extract_approximate_path(g, r.labels, r.routing, 5, 5);
  EXPECT_EQ(p.nodes, std::vector<NodeId>{5});
  EXPECT_EQ(p.weight, 0u);
}

class PathExtractionSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t, TerminationMode>> {};

TEST_P(PathExtractionSweep, RealizedPathsAcrossModes) {
  const auto [k, seed, mode] = GetParam();
  const Graph g = random_graph_nm(70, 170, {1, 11}, seed);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, seed + 3);
  const auto r = build_tz_distributed(g, h, mode);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 6) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 7) {
      const ApproxPath p =
          extract_approximate_path(g, r.labels, r.routing, u, v);
      EXPECT_EQ(p.weight, tz_query(r.labels.view(u), r.labels.view(v)));
      EXPECT_LE(p.weight, (2 * k - 1) * oracle.query(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PathExtractionSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u), ::testing::Values(1u, 2u),
                       ::testing::Values(TerminationMode::kOracle,
                                         TerminationMode::kEcho)));

}  // namespace
}  // namespace dsketch
