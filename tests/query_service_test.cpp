#include "serve/query_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/exact_oracle.hpp"
#include "baselines/landmark.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "serve/sketch_store.hpp"
#include "serve/workload.hpp"
#include "util/lru_cache.hpp"

namespace dsketch {
namespace {

/// Path 0-1-...-(n-1), every edge weight `w`: exact distances are
/// w * |u - v|, so two oracles with different `w` disagree on every
/// non-trivial pair — ideal for detecting a torn or stale-cache answer.
Graph path_graph(NodeId n, Weight w) {
  std::vector<Edge> edges;
  for (NodeId u = 0; u + 1 < n; ++u) edges.push_back({u, u + 1, w});
  return Graph::from_edges(n, edges);
}

SketchStore make_store(Scheme scheme, NodeId n = 90) {
  const Graph g = erdos_renyi(n, 0.08, {1, 9}, 23);
  BuildConfig cfg;
  cfg.scheme = scheme;
  cfg.k = 2;
  cfg.epsilon = 0.25;
  return SketchStore::from_engine(SketchEngine(g, cfg));
}

std::vector<QueryService::Pair> all_pairs_sample(NodeId n) {
  std::vector<QueryService::Pair> pairs;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u; v < n; v += 7) pairs.emplace_back(u, v);
  }
  return pairs;
}

TEST(QueryService, BatchAnswersMatchStoreForEveryScheme) {
  for (const Scheme scheme : {Scheme::kThorupZwick, Scheme::kSlack,
                              Scheme::kCdg, Scheme::kGraceful}) {
    const SketchStore store = make_store(scheme);
    QueryService service(store, {.shards = 4, .threads = 2});
    const auto pairs = all_pairs_sample(store.num_nodes());
    std::vector<Dist> answers(pairs.size(), 0);
    service.query_batch(pairs, answers);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(answers[i], store.query(pairs[i].first, pairs[i].second))
          << "scheme " << static_cast<int>(scheme) << " pair " << i;
    }
  }
}

TEST(QueryService, AnswersIndependentOfShardAndThreadCount) {
  const SketchStore store = make_store(Scheme::kThorupZwick);
  const auto pairs = all_pairs_sample(store.num_nodes());
  std::vector<Dist> baseline(pairs.size(), 0);
  QueryService reference(store, {.shards = 1, .threads = 1});
  reference.query_batch(pairs, baseline);
  for (const std::size_t shards : {2, 3, 8}) {
    for (const std::size_t threads : {1, 4}) {
      QueryService service(store, {.shards = shards,
                                   .threads = threads,
                                   .cache_capacity = 64});
      std::vector<Dist> answers(pairs.size(), 0);
      service.query_batch(pairs, answers);
      EXPECT_EQ(answers, baseline) << shards << " shards, " << threads
                                   << " threads";
    }
  }
}

TEST(QueryService, CacheHitsOnRepeatedPairsAndStatsAddUp) {
  const SketchStore store = make_store(Scheme::kThorupZwick);
  QueryService service(store,
                       {.shards = 4, .threads = 1, .cache_capacity = 1024});
  std::vector<QueryService::Pair> pairs;
  for (int rep = 0; rep < 5; ++rep) {
    for (NodeId u = 0; u < 20; ++u) pairs.emplace_back(u, u + 1);
  }
  std::vector<Dist> answers(pairs.size(), 0);
  service.query_batch(pairs, answers);
  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, pairs.size());
  EXPECT_EQ(stats.batches, 1u);
  // 20 distinct pairs queried 5x: at least the 4 repeat rounds must hit.
  EXPECT_GE(stats.cache_hits, 4u * 20u);
  EXPECT_GT(stats.hit_rate, 0.5);
  std::uint64_t per_shard = 0;
  for (const std::uint64_t q : stats.shard_queries) per_shard += q;
  EXPECT_EQ(per_shard, stats.queries);
  service.reset_stats();
  EXPECT_EQ(service.stats().queries, 0u);
}

TEST(QueryService, CachedAnswersRespectPairOrientation) {
  // The TZ query procedure is orientation-dependent (it probes p_i(u) in
  // B(v) before p_i(v) in B(u)), so query(u,v) and query(v,u) can settle
  // on different valid estimates. A cache keyed on the canonical pair
  // would serve one orientation's answer for the other; both orientations
  // must stay bit-identical to the store even with the cache hot.
  const SketchStore store = make_store(Scheme::kThorupZwick);
  QueryService service(store,
                       {.shards = 2, .threads = 1, .cache_capacity = 4096});
  for (int round = 0; round < 2; ++round) {  // second round hits the cache
    for (NodeId u = 0; u < store.num_nodes(); u += 2) {
      for (NodeId v = u + 1; v < store.num_nodes(); v += 3) {
        EXPECT_EQ(service.query(u, v), store.query(u, v));
        EXPECT_EQ(service.query(v, u), store.query(v, u));
      }
    }
  }
  EXPECT_GT(service.stats().cache_hits, 0u);
}

TEST(QueryService, SymmetricOracleCachesCanonically) {
  // Regression: the LRU used the ordered (u, v) key while shard routing
  // used the canonical one, so query(u, v) never warmed query(v, u) —
  // for a symmetric oracle the two orientations are the same answer and
  // must share one cache slot.
  const Graph g = erdos_renyi(80, 0.1, {1, 9}, 23);
  const LandmarkSketchSet oracle(g, 8, 5);
  ASSERT_TRUE(oracle.capabilities().symmetric);
  QueryService service(oracle,
                       {.shards = 4, .threads = 1, .cache_capacity = 4096});
  std::size_t pairs = 0;
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      EXPECT_EQ(service.query(u, v), oracle.query(u, v));
      EXPECT_EQ(service.query(v, u), oracle.query(v, u));
      ++pairs;
    }
  }
  // Every reverse-orientation query must have hit the forward entry.
  EXPECT_EQ(service.stats().cache_hits, pairs);

  // The pre-fix behavior (ordered keys) misses every reverse query —
  // kept reachable via force_ordered_keys so the delta stays measurable.
  QueryService ordered(oracle, {.shards = 4,
                                .threads = 1,
                                .cache_capacity = 4096,
                                .force_ordered_keys = true});
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      ordered.query(u, v);
      ordered.query(v, u);
    }
  }
  EXPECT_EQ(ordered.stats().cache_hits, 0u);
}

TEST(QueryService, AsymmetricOracleKeepsOrderedKeys) {
  // The TZ pivot walk is orientation-dependent: caching canonically
  // would serve one orientation's answer for the other. The service
  // must keep ordered keys (reverse orientation = cache miss) and stay
  // bit-identical to the store.
  const SketchStore store = make_store(Scheme::kThorupZwick);
  ASSERT_FALSE(store.capabilities().symmetric);
  QueryService service(store,
                       {.shards = 4, .threads = 1, .cache_capacity = 4096});
  for (NodeId u = 0; u < store.num_nodes(); u += 4) {
    for (NodeId v = u + 1; v < store.num_nodes(); v += 5) {
      EXPECT_EQ(service.query(u, v), store.query(u, v));
      EXPECT_EQ(service.query(v, u), store.query(v, u));
    }
  }
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(QueryService, SwapServesTheNewOracleAndInvalidatesCaches) {
  const auto o1 = std::make_shared<ExactOracle>(path_graph(64, 1));
  const auto o2 = std::make_shared<ExactOracle>(path_graph(64, 2));
  QueryService service(
      std::shared_ptr<const DistanceOracle>(o1),
      {.shards = 4, .threads = 1, .cache_capacity = 1024});
  EXPECT_EQ(service.generation(), 0u);
  EXPECT_EQ(service.query(0, 63), 63u);
  EXPECT_EQ(service.query(10, 20), 10u);

  const std::uint64_t generation =
      service.swap(std::shared_ptr<const DistanceOracle>(o2));
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(service.generation(), 1u);
  // The same pairs again: a stale cache would answer 63/10.
  EXPECT_EQ(service.query(0, 63), 126u);
  EXPECT_EQ(service.query(10, 20), 20u);

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.generation, 1u);
  EXPECT_GE(stats.cache_invalidations, 1u);

  // Swapping back re-serves o1's answers (no resurrected cache entries).
  service.swap(std::shared_ptr<const DistanceOracle>(o1));
  EXPECT_EQ(service.query(0, 63), 63u);
}

TEST(QueryService, ConcurrentSwapsNeverTearABatch) {
  // One serving thread streams batches while another hot-swaps between
  // two oracles that disagree on every pair. Invariants: every batch's
  // answers match exactly the oracle of the generation that served it
  // (generation parity identifies the oracle), and no slot is left
  // unwritten. Caches stay on, so generation invalidation is exercised
  // under fire too.
  const NodeId n = 128;
  const auto o1 = std::make_shared<ExactOracle>(path_graph(n, 1));
  const auto o2 = std::make_shared<ExactOracle>(path_graph(n, 2));
  QueryService service(
      std::shared_ptr<const DistanceOracle>(o1),
      {.shards = 8, .threads = 2, .cache_capacity = 512});

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int i = 1; i <= 400 && !stop.load(); ++i) {
      service.swap(std::shared_ptr<const DistanceOracle>(
          i % 2 == 1 ? o2 : o1));
    }
  });

  WorkloadConfig wl;
  wl.seed = 3;
  WorkloadGenerator gen(n, wl);
  std::size_t torn = 0;
  for (int b = 0; b < 300; ++b) {
    const auto pairs = gen.batch(64);
    std::vector<Dist> answers(pairs.size(), static_cast<Dist>(-2));
    const std::uint64_t generation = service.query_batch(pairs, answers);
    const DistanceOracle& oracle =
        generation % 2 == 0 ? static_cast<const DistanceOracle&>(*o1)
                            : static_cast<const DistanceOracle&>(*o2);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (answers[i] != oracle.query(pairs[i].first, pairs[i].second)) {
        ++torn;
      }
    }
  }
  stop.store(true);
  swapper.join();
  EXPECT_EQ(torn, 0u);
}

TEST(QueryService, AutoShardCountScalesWithThreads) {
  const SketchStore store = make_store(Scheme::kThorupZwick, 30);
  QueryService small(store, {.shards = 0, .threads = 1});
  EXPECT_GE(small.num_shards(), 8u);
  QueryService wide(store, {.shards = 0, .threads = 6});
  // parallel_for runs counts < 2*lanes serially; auto-sharding must stay
  // above that threshold so the pool actually engages.
  EXPECT_GE(wide.num_shards(), 2 * wide.num_threads());
}

TEST(QueryService, ZipfWorkloadSkewsTowardHotPairs) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadConfig::Kind::kZipf;
  cfg.hot_pairs = 64;
  cfg.zipf_s = 1.2;
  WorkloadGenerator gen(1000, cfg);
  std::unordered_map<std::uint64_t, std::size_t> counts;
  const std::size_t draws = 20000;
  for (std::size_t i = 0; i < draws; ++i) {
    const auto [u, v] = gen.next();
    ASSERT_LT(u, 1000u);
    ASSERT_LT(v, 1000u);
    ++counts[(static_cast<std::uint64_t>(u) << 32) | v];
  }
  EXPECT_LE(counts.size(), 64u);  // confined to the hot universe
  std::size_t max_count = 0;
  for (const auto& [key, c] : counts) max_count = std::max(max_count, c);
  // Rank-1 mass for s=1.2 over 64 ranks is ~23%; uniform would be ~1.6%.
  EXPECT_GT(max_count, draws / 10);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  ASSERT_NE(cache.get(1), nullptr);  // touch 1; 2 becomes LRU
  cache.put(3, 30);                  // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), 10);
  ASSERT_NE(cache.get(3), nullptr);
  EXPECT_EQ(*cache.get(3), 30);
  EXPECT_EQ(cache.size(), 2u);
}

// ---- degraded-mode serving -------------------------------------------------

/// Wraps an oracle and throws on query while `sick` — the failure injector
/// for the deadline/retry/circuit-breaker path. `fail_first` makes each
/// distinct (u, v) call fail that many times before succeeding (retry
/// coverage). Thread-safe: shards query concurrently.
class FlakyOracle final : public DistanceOracle {
 public:
  explicit FlakyOracle(const DistanceOracle& inner, int fail_first = 0)
      : inner_(inner), fail_first_(fail_first) {}

  Dist query(NodeId u, NodeId v) const override {
    if (sick_.load(std::memory_order_relaxed)) {
      throw std::runtime_error("flaky oracle is sick");
    }
    if (fail_first_ > 0) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint64_t>(v);
      std::lock_guard<std::mutex> lock(mu_);
      if (attempts_[key]++ < fail_first_) {
        throw std::runtime_error("flaky oracle transient failure");
      }
    }
    return inner_.query(u, v);
  }
  NodeId num_nodes() const override { return inner_.num_nodes(); }
  std::size_t size_words(NodeId u) const override {
    return inner_.size_words(u);
  }
  std::string scheme() const override { return inner_.scheme(); }
  std::string guarantee() const override { return inner_.guarantee(); }
  Capabilities capabilities() const override {
    return inner_.capabilities();
  }
  void save(std::ostream& out) const override { inner_.save(out); }

  void set_sick(bool sick) { sick_.store(sick, std::memory_order_relaxed); }

 private:
  const DistanceOracle& inner_;
  int fail_first_;
  std::atomic<bool> sick_{false};
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint64_t, int> attempts_;
};

QueryServiceConfig degraded_config() {
  QueryServiceConfig cfg;
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.max_retries = 1;
  cfg.retry_backoff_us = 0;  // keep the test fast
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_batches = 3;
  return cfg;
}

TEST(QueryServiceDegraded, TransientFailuresRetryToTheRightAnswer) {
  const SketchStore store = make_store(Scheme::kThorupZwick);
  FlakyOracle flaky(store, /*fail_first=*/1);
  QueryServiceConfig cfg = degraded_config();
  cfg.cache_capacity = 0;
  QueryService service(flaky, cfg);
  const auto pairs = all_pairs_sample(store.num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  service.query_batch(pairs, answers);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(answers[i], store.query(pairs[i].first, pairs[i].second));
  }
  const QueryServiceStats s = service.stats();
  EXPECT_GT(s.query_retries, 0u);
  EXPECT_EQ(s.query_failures, 0u);
  EXPECT_EQ(s.breaker_opens, 0u);
}

TEST(QueryServiceDegraded, BreakerFailsOverToPreviousGenerationExactly) {
  // gen 1 = healthy store, gen 2 = sick oracle. Once shards trip their
  // breakers, every answer must equal the previous generation's oracle
  // bit-for-bit: zero incorrect answers while circuit-broken (the PR's
  // acceptance bar), visible in the stale-answer counter.
  const auto store =
      std::make_shared<SketchStore>(make_store(Scheme::kThorupZwick));
  auto sick = std::make_shared<FlakyOracle>(*store);
  sick->set_sick(true);

  QueryService service(borrow_oracle(*store), degraded_config());
  service.swap(store);  // gen 1: the good store becomes previous() later
  service.swap(sick);   // gen 2: current oracle is sick
  const auto pairs = all_pairs_sample(store->num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  for (int batch = 0; batch < 6; ++batch) {
    service.query_batch(pairs, answers);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(answers[i], store->query(pairs[i].first, pairs[i].second))
          << "batch " << batch << " pair " << i;
    }
  }
  const QueryServiceStats s = service.stats();
  EXPECT_GT(s.query_failures, 0u);
  EXPECT_GT(s.breaker_opens, 0u);
  EXPECT_GT(s.breakers_open, 0u);
  EXPECT_GT(s.stale_answers, 0u);
  EXPECT_EQ(s.shed_answers, 0u);
}

TEST(QueryServiceDegraded, BreakerClosesAgainAfterRecovery) {
  const auto store =
      std::make_shared<SketchStore>(make_store(Scheme::kThorupZwick));
  auto flaky = std::make_shared<FlakyOracle>(*store);
  QueryService service(borrow_oracle(*store), degraded_config());
  service.swap(store);
  service.swap(flaky);
  flaky->set_sick(true);
  const auto pairs = all_pairs_sample(store->num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  for (int batch = 0; batch < 4; ++batch) service.query_batch(pairs, answers);
  ASSERT_GT(service.stats().breakers_open, 0u);
  // Oracle heals; after the cooldown the half-open probes succeed and all
  // breakers close again.
  flaky->set_sick(false);
  for (int batch = 0; batch < 8; ++batch) service.query_batch(pairs, answers);
  const QueryServiceStats s = service.stats();
  EXPECT_EQ(s.breakers_open, 0u);
  EXPECT_GT(s.breaker_probes, 0u);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(answers[i], store->query(pairs[i].first, pairs[i].second));
  }
}

TEST(QueryServiceDegraded, FallbackOracleServesWhenNoPreviousGeneration) {
  // A service born sick with no previous generation: the configured exact
  // fallback answers, and every answer matches it exactly.
  const Graph g = erdos_renyi(60, 0.08, {1, 9}, 29);
  BuildConfig bcfg;
  bcfg.scheme = Scheme::kThorupZwick;
  bcfg.k = 2;
  const SketchStore store = SketchStore::from_engine(SketchEngine(g, bcfg));
  FlakyOracle sick(store);
  sick.set_sick(true);
  const auto exact = std::make_shared<ExactOracle>(g);
  QueryServiceConfig cfg = degraded_config();
  cfg.fallback = exact;
  QueryService service(sick, cfg);
  const auto pairs = all_pairs_sample(g.num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  for (int batch = 0; batch < 4; ++batch) {
    service.query_batch(pairs, answers);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(answers[i], exact->query(pairs[i].first, pairs[i].second));
    }
  }
  const QueryServiceStats s = service.stats();
  EXPECT_GT(s.fallback_answers, 0u);
  EXPECT_EQ(s.stale_answers, 0u);
  EXPECT_EQ(s.shed_answers, 0u);
}

TEST(QueryServiceDegraded, NoFailoverShedsWithInfDist) {
  // Nothing to fail over to: degraded answers must be the safe kInfDist,
  // never a fabricated finite distance.
  const SketchStore store = make_store(Scheme::kThorupZwick, 40);
  FlakyOracle sick(store);
  sick.set_sick(true);
  QueryService service(sick, degraded_config());
  const auto pairs = all_pairs_sample(store.num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  for (int batch = 0; batch < 3; ++batch) service.query_batch(pairs, answers);
  for (const Dist d : answers) EXPECT_EQ(d, kInfDist);
  EXPECT_GT(service.stats().shed_answers, 0u);
}

TEST(QueryServiceDegraded, DeadlineOverrunsAreCountedAndServedDegraded) {
  // An oracle that dawdles: with a microscopic slice deadline the tail of
  // each slice is served by the fallback; answers stay correct because
  // the fallback is the same store.
  const SketchStore store = make_store(Scheme::kThorupZwick, 60);
  class SlowOracle final : public DistanceOracle {
   public:
    explicit SlowOracle(const SketchStore& s) : s_(s) {}
    Dist query(NodeId u, NodeId v) const override {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return s_.query(u, v);
    }
    NodeId num_nodes() const override { return s_.num_nodes(); }
    std::size_t size_words(NodeId u) const override {
      return s_.size_words(u);
    }
    std::string scheme() const override { return s_.scheme(); }
    std::string guarantee() const override { return s_.guarantee(); }
    Capabilities capabilities() const override { return s_.capabilities(); }
    void save(std::ostream& out) const override { s_.save(out); }

   private:
    const SketchStore& s_;
  } slow(store);
  QueryServiceConfig cfg = degraded_config();
  cfg.shard_deadline_us = 50;
  cfg.fallback = borrow_oracle(store);
  QueryService service(slow, cfg);
  const auto pairs = all_pairs_sample(store.num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  service.query_batch(pairs, answers);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(answers[i], store.query(pairs[i].first, pairs[i].second));
  }
  const QueryServiceStats s = service.stats();
  EXPECT_GT(s.deadline_violations, 0u);
  EXPECT_GT(s.fallback_answers, 0u);
}

TEST(QueryServiceDegraded, MetricsExportEveryDegradationDecision) {
  const SketchStore store = make_store(Scheme::kThorupZwick, 40);
  FlakyOracle sick(store);
  sick.set_sick(true);
  QueryService service(sick, degraded_config());
  const auto pairs = all_pairs_sample(store.num_nodes());
  std::vector<Dist> answers(pairs.size(), 0);
  for (int batch = 0; batch < 3; ++batch) service.query_batch(pairs, answers);
  obs::MetricsRegistry registry;
  service.export_metrics(registry);
  std::ostringstream out;
  registry.write_prometheus(out);
  const std::string text = out.str();
  for (const char* name :
       {"serve_query_failures_total", "serve_query_retries_total",
        "serve_deadline_violations_total", "serve_breaker_opens_total",
        "serve_breaker_probes_total", "serve_stale_answers_total",
        "serve_fallback_answers_total", "serve_shed_answers_total",
        "serve_breakers_open"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST(LruCache, PutOverwritesExistingKey) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(1, 11);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(*cache.get(1), 11);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, ZeroCapacityDisables) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LruCache, ClearEmptiesAndKeepsWorking) {
  LruCache<int, int> cache(3);
  for (int i = 0; i < 5; ++i) cache.put(i, i);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(4), nullptr);
  cache.put(7, 70);
  ASSERT_NE(cache.get(7), nullptr);
  EXPECT_EQ(*cache.get(7), 70);
}

}  // namespace
}  // namespace dsketch
