#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {
namespace {

TEST(CdgLabelWire, SerializeRoundTrip) {
  TzLabelBuilder l(9, 3);
  l.set_pivot(0, {0, 9});
  l.set_pivot(1, {4, 2});
  l.set_pivot(2, {11, 5});
  l.add_bunch_entry({2, 1, 4});
  l.add_bunch_entry({5, 2, 11});
  l.sort_bunch();
  const auto words = serialize_label(l.view());
  const TzLabelBuilder back = deserialize_label(9, words);
  EXPECT_TRUE(l == back);
}

TEST(CdgLabelWire, EmptyLabel) {
  TzLabelBuilder l(0, 2);
  const TzLabelBuilder back = deserialize_label(0, serialize_label(l.view()));
  EXPECT_TRUE(l == back);
}

TEST(CdgSketch, NeverUnderestimates) {
  const Graph g = erdos_renyi(120, 0.05, {1, 9}, 5);
  CdgConfig cfg;
  cfg.epsilon = 0.2;
  cfg.k = 2;
  cfg.seed = 3;
  const auto r = build_cdg_sketches(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      const Dist est = r.sketches.query(u, v);
      ASSERT_NE(est, kInfDist);
      EXPECT_GE(est, oracle.query(u, v));
    }
  }
}

TEST(CdgSketch, SlackStretchBoundOnFarPairs) {
  const Graph g = erdos_renyi(150, 0.04, {1, 9}, 17);
  CdgConfig cfg;
  cfg.epsilon = 0.15;
  cfg.k = 2;
  cfg.seed = 9;
  const auto r = build_cdg_sketches(g, cfg);
  const ExactOracle oracle(g);
  const Dist bound = 8 * r.k_used - 1;
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    const auto flags = far_flags(oracle.row(u), u, cfg.epsilon);
    for (NodeId v = 0; v < g.num_nodes(); v += 2) {
      if (v == u || !flags[v]) continue;
      EXPECT_LE(r.sketches.query(u, v), bound * oracle.query(u, v))
          << "far pair " << u << "," << v;
    }
  }
}

TEST(CdgSketch, NetNodesKeepOwnLabel) {
  const Graph g = grid2d(10, 10, {1, 6}, 7);
  CdgConfig cfg;
  cfg.epsilon = 0.25;
  cfg.k = 2;
  cfg.seed = 4;
  const auto r = build_cdg_sketches(g, cfg);
  for (const NodeId w : r.net) {
    EXPECT_EQ(r.sketches.sketch(w).net_node, w);
    EXPECT_EQ(r.sketches.sketch(w).net_dist, 0u);
    EXPECT_EQ(r.sketches.sketch(w).label.owner(), w);
  }
}

TEST(CdgSketch, DisseminatedLabelsMatchOwners) {
  const Graph g = erdos_renyi(100, 0.06, {1, 5}, 23);
  CdgConfig cfg;
  cfg.epsilon = 0.3;
  cfg.k = 2;
  cfg.seed = 6;
  const auto r = build_cdg_sketches(g, cfg);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& s = r.sketches.sketch(u);
    const auto& owner_label = r.sketches.sketch(s.net_node).label;
    EXPECT_TRUE(s.label == owner_label)
        << "node " << u << " received a corrupted label stream";
  }
}

TEST(CdgSketch, CostBreakdownAllPhasesCharged) {
  const Graph g = erdos_renyi(80, 0.08, {1, 5}, 2);
  CdgConfig cfg;
  cfg.epsilon = 0.25;
  cfg.k = 2;
  const auto r = build_cdg_sketches(g, cfg);
  EXPECT_GT(r.voronoi_stats.rounds, 0u);
  EXPECT_GT(r.tz_stats.rounds, 0u);
  EXPECT_GT(r.dissemination_stats.rounds, 0u);
  EXPECT_EQ(r.total().messages, r.voronoi_stats.messages +
                                    r.tz_stats.messages +
                                    r.dissemination_stats.messages);
}

TEST(CdgSketch, EchoTerminationAgrees) {
  const Graph g = erdos_renyi(70, 0.08, {1, 5}, 31);
  CdgConfig a;
  a.epsilon = 0.3;
  a.k = 2;
  a.seed = 8;
  CdgConfig b = a;
  b.termination = TerminationMode::kEcho;
  const auto ra = build_cdg_sketches(g, a);
  const auto rb = build_cdg_sketches(g, b);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      EXPECT_EQ(ra.sketches.query(u, v), rb.sketches.query(u, v));
    }
  }
}

TEST(CdgSketch, OversizedKFallsBackGracefully) {
  // A tiny net cannot support many hierarchy levels; the builder must
  // shrink k rather than fail, and the resulting sketches stay sound.
  const Graph g = erdos_renyi(60, 0.1, {1, 5}, 41);
  CdgConfig cfg;
  cfg.epsilon = 0.9;  // tiny net
  cfg.k = 8;          // far more levels than the net supports
  cfg.seed = 2;
  const auto r = build_cdg_sketches(g, cfg);
  EXPECT_LE(r.k_used, cfg.k);
  EXPECT_GE(r.k_used, 1u);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      EXPECT_GE(r.sketches.query(u, v), oracle.query(u, v));
    }
  }
}

TEST(CdgSketch, SingleNetNodeDegenerate) {
  // epsilon close to 1 on a small graph can leave a handful of net nodes;
  // every node's sketch then routes through the same few hubs.
  const Graph g = ring(30, {1, 4}, 3);
  CdgConfig cfg;
  cfg.epsilon = 0.95;
  cfg.k = 1;
  cfg.seed = 5;
  const auto r = build_cdg_sketches(g, cfg);
  EXPECT_GE(r.net.size(), 1u);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      const Dist est = r.sketches.query(u, v);
      ASSERT_NE(est, kInfDist);
      EXPECT_GE(est, oracle.query(u, v));
    }
  }
}

class CdgSweep : public ::testing::TestWithParam<
                     std::tuple<double, std::uint32_t, std::uint64_t>> {};

TEST_P(CdgSweep, SoundAcrossParameterGrid) {
  const auto [eps, k, seed] = GetParam();
  const Graph g = random_graph_nm(90, 220, {1, 9}, seed);
  CdgConfig cfg;
  cfg.epsilon = eps;
  cfg.k = k;
  cfg.seed = seed + 77;
  const auto r = build_cdg_sketches(g, cfg);
  const ExactOracle oracle(g);
  const Dist bound = 8 * r.k_used - 1;
  for (NodeId u = 0; u < g.num_nodes(); u += 6) {
    const auto flags = far_flags(oracle.row(u), u, eps);
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      if (v == u) continue;
      const Dist d = oracle.query(u, v);
      const Dist est = r.sketches.query(u, v);
      EXPECT_GE(est, d);
      if (flags[v]) {
        EXPECT_LE(est, bound * d);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CdgSweep,
    ::testing::Combine(::testing::Values(0.15, 0.3),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u)));

}  // namespace
}  // namespace dsketch
