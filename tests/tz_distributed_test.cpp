#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(n, k, seed + bump++);
  }
  return h;
}

TEST(TzDistributed, OracleStretchAndSoundness) {
  const std::uint32_t k = 3;
  const Graph g = erdos_renyi(100, 0.06, {1, 9}, 21);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, 5);
  const TzDistributedResult r =
      build_tz_distributed(g, h, TerminationMode::kOracle);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 3) {
      const Dist d = oracle.query(u, v);
      const Dist est = tz_query(r.labels.view(u), r.labels.view(v));
      ASSERT_NE(est, kInfDist);
      EXPECT_GE(est, d);
      EXPECT_LE(est, (2 * k - 1) * d);
    }
  }
}

TEST(TzDistributed, PhaseEndRoundsMonotone) {
  const Graph g = grid2d(8, 8, {1, 4}, 2);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 9);
  const TzDistributedResult r =
      build_tz_distributed(g, h, TerminationMode::kOracle);
  ASSERT_EQ(r.phase_end_rounds.size(), 3u);
  EXPECT_LT(r.phase_end_rounds[0], r.phase_end_rounds[1]);
  EXPECT_LT(r.phase_end_rounds[1], r.phase_end_rounds[2]);
}

TEST(TzDistributed, EchoModeProducesSameLabelsAsOracle) {
  const Graph g = erdos_renyi(80, 0.07, {1, 7}, 33);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 11);
  const auto oracle_run =
      build_tz_distributed(g, h, TerminationMode::kOracle);
  const auto echo_run = build_tz_distributed(g, h, TerminationMode::kEcho);
  ASSERT_EQ(oracle_run.labels.num_nodes(), echo_run.labels.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(oracle_run.labels.view(u) == echo_run.labels.view(u))
        << "echo/oracle label divergence at node " << u;
  }
}

TEST(TzDistributed, EchoOverheadIsModest) {
  // §3.3: echoes double messages; COMPLETE/START add O(n + D) per phase.
  const Graph g = erdos_renyi(120, 0.05, {1, 5}, 8);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 3);
  const auto oracle_run =
      build_tz_distributed(g, h, TerminationMode::kOracle);
  const auto echo_run = build_tz_distributed(g, h, TerminationMode::kEcho);
  EXPECT_LE(echo_run.total_messages(),
            4 * oracle_run.total_messages() + 200 * g.num_nodes());
  EXPECT_GE(echo_run.total_messages(), oracle_run.total_messages());
}

TEST(TzDistributed, RoundsScaleWithShortestPathDiameter) {
  // On a path (S = n-1) with k=1 the construction floods every source
  // through every node; rounds must be >= S.
  const Graph g = path(60, {1, 1}, 0);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 1, 1);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  EXPECT_GE(r.stats.rounds, 59u);
}

TEST(TzDistributed, KEqualsOneLearnsExactDistances) {
  const Graph g = random_tree(50, {1, 9}, 12);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 1, 1);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(tz_query(r.labels.view(u), r.labels.view(v)), oracle.query(u, v));
    }
  }
}

TEST(TzDistributed, WeightedGraphEchoMode) {
  const Graph g = grid2d(6, 6, {1, 20}, 15);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 2);
  const auto r = build_tz_distributed(g, h, TerminationMode::kEcho);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = 1; v < g.num_nodes(); v += 3) {
      if (u == v) continue;
      const Dist est = tz_query(r.labels.view(u), r.labels.view(v));
      EXPECT_GE(est, oracle.query(u, v));
      EXPECT_LE(est, 3 * oracle.query(u, v));
    }
  }
}

TEST(TzDistributed, ExhaustiveQueryNeverWorseAndStillSound) {
  const Graph g = erdos_renyi(120, 0.05, {1, 9}, 27);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 15);
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      const Dist standard = tz_query(r.labels.view(u), r.labels.view(v));
      const Dist exhaustive = tz_query_exhaustive(r.labels.view(u), r.labels.view(v));
      ASSERT_NE(exhaustive, kInfDist);
      EXPECT_LE(exhaustive, standard);           // pivot is a common member
      EXPECT_GE(exhaustive, oracle.query(u, v));  // still one-sided
    }
  }
}

class TzDistributedSweep
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint64_t, TerminationMode>> {};

TEST_P(TzDistributedSweep, StretchBoundAcrossTopologiesAndModes) {
  const auto [k, seed, mode] = GetParam();
  const Graph g = random_graph_nm(70, 170, {1, 11}, seed);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, seed + 100);
  const auto r = build_tz_distributed(g, h, mode);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      const Dist d = oracle.query(u, v);
      const Dist est = tz_query(r.labels.view(u), r.labels.view(v));
      ASSERT_NE(est, kInfDist);
      EXPECT_GE(est, d);
      EXPECT_LE(est, (2 * k - 1) * d) << "pair " << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TzDistributedSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(TerminationMode::kOracle,
                                         TerminationMode::kEcho)));

}  // namespace
}  // namespace dsketch
