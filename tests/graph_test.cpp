#include <gtest/gtest.h>

#include "graph/graph.hpp"

namespace dsketch {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(0, 2, 30);
  return b.build();
}

TEST(Graph, CountsNodesAndEdges) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, AdjacencySortedAndSymmetric) {
  const Graph g = triangle();
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0].to, 1u);
  EXPECT_EQ(n0[0].weight, 10u);
  EXPECT_EQ(n0[1].to, 2u);
  EXPECT_EQ(n0[1].weight, 30u);
  // symmetric view from node 2
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0].to, 0u);
  EXPECT_EQ(n2[1].to, 1u);
}

TEST(Graph, DegreeMatchesAdjacency) {
  const Graph g = triangle();
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(g.degree(u), g.neighbors(u).size());
  }
}

TEST(Graph, TotalWeight) { EXPECT_EQ(triangle().total_weight(), 60u); }

TEST(Graph, ConnectedDetection) {
  EXPECT_TRUE(triangle().connected());
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(2, 3, 1);
  EXPECT_FALSE(b.build().connected());
}

TEST(GraphBuilder, IgnoresSelfLoops) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 5);
  b.add_edge(0, 1, 5);
  EXPECT_EQ(b.num_edges(), 1u);
}

TEST(GraphBuilder, DeduplicatesKeepingSmallerWeight) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 9);
  b.add_edge(1, 0, 4);  // same undirected edge, reversed, lighter
  b.add_edge(0, 1, 7);
  // Dedup happens at build() (sort-and-unique), not per add.
  ASSERT_EQ(b.num_edges(), 3u);
  const Graph g = b.build();
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 4u);
}

TEST(GraphBuilder, HasEdgeStaysCurrentAfterLazyIndexing) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  EXPECT_TRUE(b.has_edge(0, 1));   // materializes the lazy index
  b.add_edge(2, 3, 1);             // must keep the index in sync
  EXPECT_TRUE(b.has_edge(3, 2));
  EXPECT_FALSE(b.has_edge(1, 2));
}

TEST(Graph, MaxWeightIsCached) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 7);
  b.add_edge(1, 2, 19);
  EXPECT_EQ(b.build().max_weight(), 19u);
  EXPECT_EQ(Graph().max_weight(), 0u);
}

TEST(GraphBuilder, HasEdgeIsOrderInsensitive) {
  GraphBuilder b(3);
  b.add_edge(2, 1, 1);
  EXPECT_TRUE(b.has_edge(1, 2));
  EXPECT_TRUE(b.has_edge(2, 1));
  EXPECT_FALSE(b.has_edge(0, 1));
}

TEST(Graph, HalfEdgeIndexIsGloballyUnique) {
  const Graph g = triangle();
  std::vector<bool> seen(2 * g.num_edges(), false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (std::size_t s = 0; s < g.degree(u); ++s) {
      const std::size_t h = g.half_edge_index(u, s);
      ASSERT_LT(h, seen.size());
      EXPECT_FALSE(seen[h]);
      seen[h] = true;
    }
  }
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_TRUE(g.connected());
}

TEST(Graph, SingleNode) {
  GraphBuilder b(1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_nodes(), 1u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_TRUE(g.connected());
}

}  // namespace
}  // namespace dsketch
