#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "congest/bellman_ford.hpp"
#include "graph/generators.hpp"
#include "obs/round_log.hpp"
#include "sketch/cdg_sketch.hpp"

namespace dsketch {
namespace {

using obs::RoundLog;
using obs::RoundSample;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Extracts an integer field from a JSON line ("key":123).
std::uint64_t field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) return 0;
  return std::stoull(line.substr(pos + needle.size()));
}

TEST(RoundLog, OneLinePerRoundUnderBudget) {
  std::ostringstream out;
  RoundLog log(out);
  log.begin_phase("p");
  for (std::uint64_t r = 0; r < 5; ++r) {
    log.record(RoundSample{r, 10 * (r + 1), 30 * (r + 1), 100 - r, r});
  }
  log.flush();
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(log.lines_emitted(), 5u);
  EXPECT_NE(lines[0].find("\"experiment\":\"congest\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"table\":\"congest_rounds\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"phase\":\"p\""), std::string::npos);
  EXPECT_EQ(field(lines[2], "round"), 2u);
  EXPECT_EQ(field(lines[2], "messages"), 30u);
  EXPECT_EQ(field(lines[2], "rounds_in_window"), 1u);
}

TEST(RoundLog, StrideDoublingBoundsLinesWithoutLosingTotals) {
  std::ostringstream out;
  RoundLog::Options opts;
  opts.max_lines_per_phase = 8;
  RoundLog log(out, opts);
  log.begin_phase("long");
  constexpr std::uint64_t kRounds = 10000;
  std::uint64_t sent_messages = 0;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    log.record(RoundSample{r, r % 7, 3 * (r % 7), 1, 1});
    sent_messages += r % 7;
  }
  log.flush();
  const auto lines = lines_of(out.str());
  // Budget 8 with doubling stride: O(budget * log(rounds)) lines, far
  // below one per round but never zero.
  EXPECT_LE(lines.size(), 8u * 15u);
  EXPECT_GE(lines.size(), 8u);
  // No data loss: window sums cover every round and every message.
  std::uint64_t covered_rounds = 0;
  std::uint64_t covered_messages = 0;
  std::uint64_t next_round = 0;
  for (const std::string& line : lines) {
    EXPECT_EQ(field(line, "round"), next_round) << "gap before " << line;
    next_round = field(line, "round_end") + 1;
    covered_rounds += field(line, "rounds_in_window");
    covered_messages += field(line, "messages");
  }
  EXPECT_EQ(covered_rounds, kRounds);
  EXPECT_EQ(covered_messages, sent_messages);
}

TEST(RoundLog, BeginPhaseResetsStrideAndFlushesWindow) {
  std::ostringstream out;
  RoundLog::Options opts;
  opts.experiment = "e99";
  opts.table = "rounds";
  opts.max_lines_per_phase = 4;
  RoundLog log(out, opts);
  log.begin_phase("a");
  for (std::uint64_t r = 0; r < 32; ++r) {
    log.record(RoundSample{r, 1, 1, 1, 1});
  }
  log.begin_phase("b");  // implicit flush of a's partial window
  log.record(RoundSample{0, 5, 5, 5, 5});
  log.flush();
  const auto lines = lines_of(out.str());
  ASSERT_GE(lines.size(), 2u);
  // Phase b starts back at stride 1: its first line is a 1-round window.
  const std::string& last = lines.back();
  EXPECT_NE(last.find("\"phase\":\"b\""), std::string::npos);
  EXPECT_NE(last.find("\"experiment\":\"e99\""), std::string::npos);
  EXPECT_NE(last.find("\"table\":\"rounds\""), std::string::npos);
  EXPECT_EQ(field(last, "rounds_in_window"), 1u);
  EXPECT_EQ(field(last, "messages"), 5u);
  // Every phase-a round is covered despite the phase switch.
  std::uint64_t a_rounds = 0;
  for (const std::string& line : lines) {
    if (line.find("\"phase\":\"a\"") != std::string::npos) {
      a_rounds += field(line, "rounds_in_window");
    }
  }
  EXPECT_EQ(a_rounds, 32u);
}

TEST(RoundLog, SimulatorStreamsRealRoundsThatSumToStats) {
  // A real CONGEST run: per-round message deltas must sum to the run's
  // aggregate SimStats, and the phase label must flow from SimConfig.
  const Graph g = erdos_renyi(128, 0.05, {1, 8}, 11);
  std::ostringstream out;
  RoundLog log(out);
  SimConfig cfg;
  cfg.phase = "bf_test";
  cfg.round_log = &log;
  const SuperSourceBfResult bf = run_super_source_bf(g, {0, 5, 9}, cfg);
  log.flush();

  const auto lines = lines_of(out.str());
  ASSERT_FALSE(lines.empty());
  std::uint64_t messages = 0, words = 0, rounds = 0;
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"phase\":\"bf_test\""), std::string::npos);
    messages += field(line, "messages");
    words += field(line, "words");
    rounds += field(line, "rounds_in_window");
  }
  EXPECT_EQ(messages, bf.stats.messages);
  EXPECT_EQ(words, bf.stats.words);
  EXPECT_EQ(rounds, bf.stats.rounds);
}

TEST(SimStats, PhaseBreakdownSurvivesMerging) {
  SimStats a;
  a.label = "first";
  a.rounds = 10;
  a.messages = 100;
  a.words = 300;
  SimStats b;
  b.label = "second";
  b.rounds = 4;
  b.messages = 40;
  b.words = 120;
  b.hit_round_limit = true;
  SimStats total = a;
  total += b;
  EXPECT_EQ(total.rounds, 14u);
  EXPECT_TRUE(total.hit_round_limit);
  const std::vector<SimPhase> phases = total.breakdown();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].label, "first");
  EXPECT_EQ(phases[1].label, "second");
  EXPECT_FALSE(phases[0].hit_round_limit);
  EXPECT_TRUE(phases[1].hit_round_limit);
  EXPECT_EQ(total.limited_phases(), "second");

  // Merging an empty stats object must not pollute the breakdown.
  total += SimStats{};
  EXPECT_EQ(total.breakdown().size(), 2u);

  // Self-addition stays safe; equal labels coalesce (counters double,
  // the breakdown does not grow duplicate entries).
  SimStats doubled = total;
  doubled += doubled;
  EXPECT_EQ(doubled.rounds, 28u);
  ASSERT_EQ(doubled.breakdown().size(), 2u);
  EXPECT_EQ(doubled.breakdown()[0].label, "first");
  EXPECT_EQ(doubled.breakdown()[0].rounds, 20u);
  EXPECT_EQ(doubled.breakdown()[0].messages, 200u);
  EXPECT_EQ(doubled.breakdown()[1].label, "second");
  EXPECT_EQ(doubled.breakdown()[1].rounds, 8u);
  EXPECT_TRUE(doubled.breakdown()[1].hit_round_limit);
  EXPECT_EQ(doubled.limited_phases(), "second");
}

TEST(SimStats, MergingKeepsAttributionAcrossDifferingPhaseSets) {
  // Two multi-phase runs with overlapping but unequal phase sets: shared
  // labels coalesce, unshared ones keep their own entries — per-phase
  // attribution survives grid-style accumulation across runs.
  SimStats run1;
  {
    SimStats bfs;
    bfs.label = "bfs_tree";
    bfs.rounds = 12;
    bfs.messages = 120;
    bfs.max_outbox = 3;
    SimStats tz;
    tz.label = "tz_construction";
    tz.rounds = 50;
    tz.messages = 900;
    tz.max_outbox = 7;
    run1 = bfs;
    run1 += tz;
  }
  SimStats run2;
  {
    SimStats tz;
    tz.label = "tz_construction";
    tz.rounds = 60;
    tz.messages = 1100;
    tz.max_outbox = 9;
    tz.hit_round_limit = true;
    SimStats exchange;
    exchange.label = "sketch_exchange";
    exchange.rounds = 5;
    exchange.messages = 40;
    run2 = tz;
    run2 += exchange;
  }
  SimStats total = run1;
  total += run2;
  const std::vector<SimPhase> phases = total.breakdown();
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].label, "bfs_tree");
  EXPECT_EQ(phases[0].rounds, 12u);
  EXPECT_EQ(phases[1].label, "tz_construction");
  EXPECT_EQ(phases[1].rounds, 110u);
  EXPECT_EQ(phases[1].messages, 2000u);
  EXPECT_EQ(phases[1].max_outbox, 9u);
  EXPECT_TRUE(phases[1].hit_round_limit);
  EXPECT_EQ(phases[2].label, "sketch_exchange");
  EXPECT_EQ(phases[2].rounds, 5u);
  EXPECT_FALSE(phases[2].hit_round_limit);
  EXPECT_EQ(total.rounds, 127u);
  EXPECT_EQ(total.messages, 2160u);
  EXPECT_EQ(total.limited_phases(), "tz_construction");
}

TEST(SimStats, CdgBuildCarriesLabeledPhases) {
  // The CDG pipeline labels its three sub-runs; summing them yields a
  // breakdown with each phase present exactly once.
  const Graph g = erdos_renyi(96, 0.06, {1, 6}, 13);
  CdgConfig config;
  config.k = 2;
  config.epsilon = 0.3;
  config.seed = 5;
  const CdgBuildResult r = build_cdg_sketches(g, config);
  SimStats total = r.voronoi_stats;
  total += r.tz_stats;
  total += r.dissemination_stats;
  std::vector<std::string> labels;
  for (const SimPhase& p : total.breakdown()) labels.push_back(p.label);
  EXPECT_NE(std::find(labels.begin(), labels.end(), "cdg_voronoi"),
            labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "cdg_dissemination"),
            labels.end());
  for (const std::string& l : labels) {
    EXPECT_NE(l, "unlabeled") << "an empty-label phase leaked through";
  }
}

}  // namespace
}  // namespace dsketch
