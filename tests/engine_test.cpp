#include <gtest/gtest.h>

#include "baselines/exact_oracle.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"

namespace dsketch {
namespace {

TEST(Engine, ThorupZwickScheme) {
  const Graph g = erdos_renyi(100, 0.06, {1, 9}, 3);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 3;
  const SketchEngine engine(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      const Dist d = oracle.query(u, v);
      EXPECT_GE(engine.query(u, v), d);
      EXPECT_LE(engine.query(u, v), 5 * d);
    }
  }
  EXPECT_GT(engine.cost().rounds, 0u);
  EXPECT_GT(engine.mean_size_words(), 0.0);
  EXPECT_NE(engine.guarantee().find("5"), std::string::npos);
}

TEST(Engine, SlackScheme) {
  const Graph g = erdos_renyi(80, 0.08, {1, 9}, 5);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.2;
  const SketchEngine engine(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 6) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 7) {
      EXPECT_GE(engine.query(u, v), oracle.query(u, v));
    }
  }
}

TEST(Engine, CdgScheme) {
  const Graph g = erdos_renyi(80, 0.08, {1, 9}, 7);
  BuildConfig cfg;
  cfg.scheme = Scheme::kCdg;
  cfg.epsilon = 0.25;
  cfg.k = 2;
  const SketchEngine engine(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 6) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 7) {
      EXPECT_GE(engine.query(u, v), oracle.query(u, v));
    }
  }
}

TEST(Engine, GracefulScheme) {
  const Graph g = erdos_renyi(64, 0.1, {1, 9}, 9);
  BuildConfig cfg;
  cfg.scheme = Scheme::kGraceful;
  const SketchEngine engine(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 6) {
      EXPECT_GE(engine.query(u, v), oracle.query(u, v));
    }
  }
  EXPECT_NE(engine.guarantee().find("log"), std::string::npos);
}

TEST(Engine, EchoTerminationWorksThroughFacade) {
  const Graph g = erdos_renyi(60, 0.1, {1, 5}, 11);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  cfg.termination = TerminationMode::kEcho;
  const SketchEngine engine(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 8) {
      const Dist d = oracle.query(u, v);
      EXPECT_GE(engine.query(u, v), d);
      EXPECT_LE(engine.query(u, v), 3 * d);
    }
  }
}

TEST(Engine, KnownSModeThroughFacade) {
  const Graph g = erdos_renyi(60, 0.1, {1, 5}, 13);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  cfg.termination = TerminationMode::kKnownS;
  const SketchEngine engine(g, cfg);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 8) {
      const Dist d = oracle.query(u, v);
      EXPECT_GE(engine.query(u, v), d);
      EXPECT_LE(engine.query(u, v), 3 * d);
    }
  }
  // The padded deadlines make the reported cost the analytic bound.
  EXPECT_GT(engine.cost().rounds, 1000u);
}

TEST(Engine, GuaranteeStringsMentionParameters) {
  const Graph g = ring(24, {1, 3}, 1);
  BuildConfig tz;
  tz.scheme = Scheme::kThorupZwick;
  tz.k = 4;
  EXPECT_NE(SketchEngine(g, tz).guarantee().find("7"), std::string::npos);
  BuildConfig cdg;
  cdg.scheme = Scheme::kCdg;
  cdg.k = 2;
  cdg.epsilon = 0.25;
  EXPECT_NE(SketchEngine(g, cdg).guarantee().find("15"), std::string::npos);
}

TEST(Engine, MoveSemantics) {
  const Graph g = ring(32, {1, 3}, 1);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.3;
  SketchEngine a(g, cfg);
  const Dist before = a.query(0, 16);
  SketchEngine b = std::move(a);
  EXPECT_EQ(b.query(0, 16), before);
}

}  // namespace
}  // namespace dsketch
