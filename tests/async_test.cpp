// Asynchrony extension (paper §5 future work): messages take uniform
// delays in [1, async_max_delay] rounds and links may reorder. The
// constructions are causal — Bellman-Ford converges under any finite
// delay, the §3.3 echo termination tracks causality rather than rounds —
// so every algorithm must produce *identical labels* under asynchrony.
#include <gtest/gtest.h>

#include <tuple>

#include "congest/bellman_ford.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

SimConfig async_cfg(std::uint32_t max_delay, std::uint64_t seed = 0x5eed) {
  SimConfig cfg;
  cfg.async_max_delay = max_delay;
  cfg.async_seed = seed;
  return cfg;
}

Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(n, k, seed + bump++);
  }
  return h;
}

TEST(Async, MultiSourceBfExactUnderDelays) {
  const Graph g = erdos_renyi(80, 0.06, {1, 15}, 4);
  const std::vector<NodeId> sources{1, 33, 77};
  const auto r = run_multi_source_bf(g, sources, async_cfg(5));
  for (const NodeId s : sources) {
    const auto exact = dijkstra(g, s);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(r.dist[u].at(s), exact[u]);
    }
  }
}

TEST(Async, SuperSourceBfExactUnderDelays) {
  const Graph g = grid2d(9, 9, {1, 8}, 7);
  const std::vector<NodeId> sources{0, 40, 80};
  const auto sync = run_super_source_bf(g, sources);
  const auto async = run_super_source_bf(g, sources, async_cfg(4));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(async.dist[u], sync.dist[u]);
    EXPECT_EQ(async.owner[u], sync.owner[u]);
  }
}

TEST(Async, DelaysStretchRoundCount) {
  const Graph g = path(40, {1, 1}, 0);
  const auto sync = run_super_source_bf(g, {0});
  const auto slow = run_super_source_bf(g, {0}, async_cfg(6));
  EXPECT_GT(slow.stats.rounds, sync.stats.rounds);
  // Messages unchanged: delay does not create traffic (no retries needed).
  EXPECT_EQ(slow.stats.messages, sync.stats.messages);
}

TEST(Async, TzOracleLabelsIdenticalUnderDelays) {
  const Graph g = erdos_renyi(80, 0.07, {1, 9}, 9);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 5);
  const auto sync = build_tz_distributed(g, h, TerminationMode::kOracle);
  const auto async =
      build_tz_distributed(g, h, TerminationMode::kOracle, async_cfg(4));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(sync.labels.view(u) == async.labels.view(u)) << "node " << u;
  }
}

TEST(Async, TzEchoTerminationCorrectUnderDelaysAndReordering) {
  // The §3.3 machinery is the part most exposed to asynchrony: ECHO
  // accounting and the COMPLETE convergecast must not rely on round
  // synchronization or FIFO links.
  const Graph g = erdos_renyi(70, 0.08, {1, 9}, 13);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 7);
  const auto central = build_tz_centralized(g, h);
  const auto async =
      build_tz_distributed(g, h, TerminationMode::kEcho, async_cfg(5));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(central.view(u) == async.labels.view(u)) << "node " << u;
  }
}

TEST(Async, CdgDisseminationToleratesReordering) {
  const Graph g = erdos_renyi(90, 0.06, {1, 7}, 17);
  CdgConfig cfg;
  cfg.epsilon = 0.25;
  cfg.k = 2;
  cfg.seed = 3;
  const auto sync = build_cdg_sketches(g, cfg);
  const auto async = build_cdg_sketches(g, cfg, async_cfg(5));
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 3) {
      EXPECT_EQ(sync.sketches.query(u, v), async.sketches.query(u, v));
    }
  }
}

TEST(Async, DeterministicForFixedSeed) {
  const Graph g = erdos_renyi(60, 0.08, {1, 5}, 21);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 9);
  const auto a =
      build_tz_distributed(g, h, TerminationMode::kEcho, async_cfg(4, 42));
  const auto b =
      build_tz_distributed(g, h, TerminationMode::kEcho, async_cfg(4, 42));
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
}

TEST(Async, DifferentDelaySeedsSameLabels) {
  const Graph g = grid2d(7, 7, {1, 9}, 2);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 3);
  const auto a =
      build_tz_distributed(g, h, TerminationMode::kEcho, async_cfg(4, 1));
  const auto b =
      build_tz_distributed(g, h, TerminationMode::kEcho, async_cfg(4, 2));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(a.labels.view(u) == b.labels.view(u)) << "node " << u;
  }
}

class AsyncSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(AsyncSweep, EchoLabelsMatchCentralizedAcrossDelays) {
  const auto [max_delay, seed] = GetParam();
  const Graph g = random_graph_nm(60, 140, {1, 9}, seed);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, seed + 11);
  const auto central = build_tz_centralized(g, h);
  const auto async = build_tz_distributed(g, h, TerminationMode::kEcho,
                                          async_cfg(max_delay, seed));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_TRUE(central.view(u) == async.labels.view(u)) << "node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, AsyncSweep,
                         ::testing::Combine(::testing::Values(2u, 3u, 8u),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace dsketch
