#include <gtest/gtest.h>

#include "congest/echo_termination.hpp"

namespace dsketch {
namespace {

TEST(EchoTracker, ImmediateLifecycle) {
  EchoTracker t;
  EXPECT_FALSE(t.has_outstanding());
  EXPECT_FALSE(t.self_announce_complete());
}

TEST(EchoTracker, SelfAnnounceCompletesAfterAllEchoes) {
  EchoTracker t;
  t.commit_send(/*source=*/5, /*sent_value=*/0, /*fanout=*/3,
                /*self_announce=*/true);
  EXPECT_TRUE(t.has_outstanding());
  EXPECT_FALSE(t.on_echo(5, 0).has_value());
  EXPECT_FALSE(t.on_echo(5, 0).has_value());
  EXPECT_FALSE(t.self_announce_complete());
  EXPECT_FALSE(t.on_echo(5, 0).has_value());
  EXPECT_TRUE(t.self_announce_complete());
  EXPECT_FALSE(t.has_outstanding());
}

TEST(EchoTracker, RelayEchoesUpstreamTrigger) {
  EchoTracker t;
  // Received (src=7, value=10) on edge 2; it triggered our broadcast of 12.
  EXPECT_FALSE(t.accept_trigger(7, 2, 10).has_value());
  t.commit_send(7, 12, /*fanout=*/2, /*self_announce=*/false);
  EXPECT_FALSE(t.on_echo(7, 12).has_value());
  const auto up = t.on_echo(7, 12);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->edge, 2u);
  EXPECT_EQ(up->value, 10u);
  EXPECT_FALSE(t.has_outstanding());
}

TEST(EchoTracker, SupersededTriggerReturnedForImmediateEcho) {
  EchoTracker t;
  EXPECT_FALSE(t.accept_trigger(7, 2, 10).has_value());
  // Better value arrives on edge 4 before we sent; old trigger must be
  // echoed immediately.
  const auto old = t.accept_trigger(7, 4, 8);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->edge, 2u);
  EXPECT_EQ(old->value, 10u);
  t.commit_send(7, 9, 2, false);
  t.on_echo(7, 9);
  const auto up = t.on_echo(7, 9);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->edge, 4u);
  EXPECT_EQ(up->value, 8u);
}

TEST(EchoTracker, MultipleOutstandingValuesPerSource) {
  EchoTracker t;
  t.accept_trigger(3, 0, 20);
  t.commit_send(3, 21, 2, false);
  t.accept_trigger(3, 1, 15);
  t.commit_send(3, 16, 2, false);
  EXPECT_EQ(t.outstanding_records(), 2u);
  // Complete the newer record first — must resolve to the edge-1 trigger.
  t.on_echo(3, 16);
  const auto up2 = t.on_echo(3, 16);
  ASSERT_TRUE(up2.has_value());
  EXPECT_EQ(up2->edge, 1u);
  t.on_echo(3, 21);
  const auto up1 = t.on_echo(3, 21);
  ASSERT_TRUE(up1.has_value());
  EXPECT_EQ(up1->edge, 0u);
  EXPECT_FALSE(t.has_outstanding());
}

TEST(EchoTracker, ZeroFanoutSelfAnnounceCompletesInstantly) {
  EchoTracker t;
  t.commit_send(1, 0, 0, true);
  EXPECT_TRUE(t.self_announce_complete());
  EXPECT_FALSE(t.has_outstanding());
}

TEST(CompletionTracker, LeafNonSourceFiresImmediately) {
  CompletionTracker c;
  c.reset(/*num_children=*/0, /*self_complete=*/true);
  // ready state is reported through the event APIs:
  EXPECT_TRUE(c.on_self_complete());
}

TEST(CompletionTracker, WaitsForAllChildren) {
  CompletionTracker c;
  c.reset(2, true);
  EXPECT_FALSE(c.on_child_complete());
  EXPECT_TRUE(c.on_child_complete());
}

TEST(CompletionTracker, WaitsForSelf) {
  CompletionTracker c;
  c.reset(1, false);
  EXPECT_FALSE(c.on_child_complete());
  EXPECT_TRUE(c.on_self_complete());
}

TEST(CompletionTracker, FiresOnlyOnce) {
  CompletionTracker c;
  c.reset(1, true);
  EXPECT_TRUE(c.on_child_complete());
  c.mark_fired();
  EXPECT_FALSE(c.on_self_complete());
  EXPECT_FALSE(c.on_child_complete());
}

TEST(CompletionTracker, ResetClearsState) {
  CompletionTracker c;
  c.reset(1, true);
  c.on_child_complete();
  c.mark_fired();
  c.reset(1, true);
  EXPECT_FALSE(c.fired());
  EXPECT_TRUE(c.on_child_complete());
}

}  // namespace
}  // namespace dsketch
