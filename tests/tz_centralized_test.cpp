#include <gtest/gtest.h>

#include <tuple>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "sketch/cdg_sketch.hpp"  // serialize_label
#include "sketch/tz_centralized.hpp"
#include "util/thread_pool.hpp"

namespace dsketch {
namespace {

/// Brute-force labels straight from the definitions in §3.1, using full
/// APSP: B_i(u) = {w in A_i : key(d(u,w),w) < key(d(u,A_{i+1}))}.
LabelArena brute_force_labels(const Graph& g, const Hierarchy& h) {
  const ExactOracle oracle(g);
  const NodeId n = g.num_nodes();
  const std::uint32_t k = h.k();
  std::vector<TzLabelBuilder> labels;
  for (NodeId u = 0; u < n; ++u) {
    labels.emplace_back(u, k);
    // gates[i] = key of nearest A_i node.
    std::vector<DistKey> gates(k + 1, DistKey{});
    for (std::uint32_t i = 0; i < k; ++i) {
      DistKey best{};
      for (NodeId w = 0; w < n; ++w) {
        if (!h.in_level(w, i)) continue;
        const DistKey key{oracle.query(u, w), w};
        if (key < best) best = key;
      }
      gates[i] = best;
      labels[u].set_pivot(i, best);
    }
    for (std::uint32_t i = 0; i < k; ++i) {
      for (NodeId w = 0; w < n; ++w) {
        if (h.level_of(w) != i + 1) continue;  // w in A_i \ A_{i+1}
        const DistKey key{oracle.query(u, w), w};
        if (key < gates[i + 1]) {
          labels[u].add_bunch_entry({w, i, oracle.query(u, w)});
        }
      }
    }
    labels[u].sort_bunch();
  }
  return LabelArena::from_builders(std::move(labels));
}

class TzCentralizedSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(TzCentralizedSweep, MatchesBruteForceDefinitions) {
  const auto [k, seed] = GetParam();
  const Graph g = erdos_renyi(60, 0.08, {1, 12}, seed);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, seed * 31 + 1);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, seed * 31 + 1 + bump++);
  }
  const auto built = build_tz_centralized(g, h);
  const auto brute = brute_force_labels(g, h);
  ASSERT_EQ(built.num_nodes(), brute.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(built.view(u) == brute.view(u)) << "label mismatch at node " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TzCentralizedSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(TzCentralized, StretchBoundHolds) {
  const std::uint32_t k = 3;
  const Graph g = erdos_renyi(120, 0.05, {1, 10}, 7);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 77);
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, 78);
  }
  const auto labels = build_tz_centralized(g, h);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      const Dist d = oracle.query(u, v);
      const Dist est = tz_query(labels.view(u), labels.view(v));
      EXPECT_GE(est, d);
      EXPECT_LE(est, (2 * k - 1) * d);
    }
  }
}

TEST(TzCentralized, KEqualsOneIsExact) {
  const Graph g = grid2d(6, 6, {1, 7}, 3);
  const Hierarchy h = Hierarchy::sample(g.num_nodes(), 1, 1);
  const auto labels = build_tz_centralized(g, h);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // k=1: every node's bunch is all of V — sketch degenerates to APSP rows.
    EXPECT_EQ(labels.view(u).count, g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (u == v) continue;
      EXPECT_EQ(tz_query(labels.view(u), labels.view(v)), oracle.query(u, v));
    }
  }
}

TEST(TzCentralized, PivotZeroIsSelf) {
  const Graph g = ring(20, {1, 5}, 9);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), 3, 5);
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), 3, 6);
  }
  const auto labels = build_tz_centralized(g, h);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(labels.view(u).pivot(0).id, u);
    EXPECT_EQ(labels.view(u).pivot(0).dist, 0u);
  }
}

TEST(TzCentralized, ParallelBuildIsByteIdenticalToSerial) {
  // The parallel construction merges per-source cluster growth in phase
  // order, so a 1-thread and an N-thread build must serialize to exactly
  // the same words for every node.
  const Graph g = erdos_renyi(300, 0.03, {1, 14}, 23);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), 3, 29);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), 3, 29 + bump++);
  }
  ThreadPool serial_pool(1);
  ThreadPool wide_pool(4);
  const auto serial = build_tz_centralized(g, h, &serial_pool);
  const auto wide = build_tz_centralized(g, h, &wide_pool);
  const auto global = build_tz_centralized(g, h);
  ASSERT_EQ(serial.num_nodes(), wide.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(serialize_label(serial.view(u)), serialize_label(wide.view(u)))
        << "label words diverge at node " << u;
    EXPECT_EQ(serialize_label(serial.view(u)), serialize_label(global.view(u)))
        << "global-pool label words diverge at node " << u;
  }
}

TEST(TzCentralized, BunchSizeGrowsAsLevelsShrink) {
  // Sanity on Lemma 3.1's shape: larger k gives smaller expected bunches
  // per level; total label size k=4 should be far below k=1 (= n).
  const Graph g = erdos_renyi(200, 0.04, {1, 6}, 17);
  const Hierarchy h1 = Hierarchy::sample(g.num_nodes(), 1, 3);
  Hierarchy h4 = Hierarchy::sample(g.num_nodes(), 4, 3);
  while (!h4.top_level_nonempty()) {
    h4 = Hierarchy::sample(g.num_nodes(), 4, 4);
  }
  const auto l1 = build_tz_centralized(g, h1);
  const auto l4 = build_tz_centralized(g, h4);
  double s1 = 0, s4 = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    s1 += static_cast<double>(l1.size_words(u));
    s4 += static_cast<double>(l4.size_words(u));
  }
  EXPECT_LT(s4, 0.6 * s1);
}

}  // namespace
}  // namespace dsketch
