#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "serve/workload.hpp"

namespace dsketch {
namespace {

TEST(Workload, ParseKind) {
  EXPECT_EQ(parse_workload_kind("uniform"), WorkloadConfig::Kind::kUniform);
  EXPECT_EQ(parse_workload_kind("zipf"), WorkloadConfig::Kind::kZipf);
  EXPECT_THROW(parse_workload_kind("gaussian"), std::runtime_error);
  EXPECT_THROW(parse_workload_kind(""), std::runtime_error);
}

TEST(Workload, UniformStaysInRange) {
  const NodeId n = 257;
  WorkloadConfig cfg;
  WorkloadGenerator gen(n, cfg);
  for (const auto& [u, v] : gen.batch(5000)) {
    EXPECT_LT(u, n);
    EXPECT_LT(v, n);
  }
}

TEST(Workload, UniformCoversTheNodeSpace) {
  const NodeId n = 64;
  WorkloadConfig cfg;
  WorkloadGenerator gen(n, cfg);
  std::set<NodeId> seen;
  for (const auto& [u, v] : gen.batch(20000)) {
    seen.insert(u);
    seen.insert(v);
  }
  // 40k draws over 64 ids: every id should appear many times over.
  EXPECT_EQ(seen.size(), n);
}

TEST(Workload, DeterministicAcrossInstancesWithSameSeed) {
  WorkloadConfig cfg;
  cfg.seed = 123;
  for (const auto kind :
       {WorkloadConfig::Kind::kUniform, WorkloadConfig::Kind::kZipf}) {
    cfg.kind = kind;
    WorkloadGenerator a(1024, cfg);
    WorkloadGenerator b(1024, cfg);
    EXPECT_EQ(a.batch(2000), b.batch(2000));
  }
}

TEST(Workload, DifferentSeedsGiveDifferentStreams) {
  WorkloadConfig cfg_a, cfg_b;
  cfg_a.seed = 1;
  cfg_b.seed = 2;
  WorkloadGenerator a(1024, cfg_a);
  WorkloadGenerator b(1024, cfg_b);
  EXPECT_NE(a.batch(100), b.batch(100));
}

TEST(Workload, ZipfDrawsFromTheHotUniverse) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadConfig::Kind::kZipf;
  cfg.hot_pairs = 100;
  WorkloadGenerator gen(4096, cfg);
  std::set<std::pair<NodeId, NodeId>> distinct;
  for (const auto& pair : gen.batch(20000)) distinct.insert(pair);
  // Every draw comes from the fixed universe of hot pairs.
  EXPECT_LE(distinct.size(), cfg.hot_pairs);
  // And with 20k draws over 100 pairs, the universe is fully exercised.
  EXPECT_GT(distinct.size(), cfg.hot_pairs / 2);
}

TEST(Workload, ZipfHeadDominatesTheStream) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadConfig::Kind::kZipf;
  cfg.hot_pairs = 1000;
  cfg.zipf_s = 1.2;
  WorkloadGenerator gen(4096, cfg);
  std::map<std::pair<NodeId, NodeId>, std::size_t> freq;
  const std::size_t draws = 50000;
  for (const auto& pair : gen.batch(draws)) ++freq[pair];

  std::vector<std::size_t> counts;
  counts.reserve(freq.size());
  for (const auto& [_, c] : freq) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());

  // Zipf(1.2) over 1000 ranks: the top-10 pairs carry ~57% of the
  // stream (vs 1% under uniform). Assert well below the analytic value
  // so the test is robust to sampling noise.
  std::size_t top10 = 0;
  for (std::size_t i = 0; i < 10 && i < counts.size(); ++i) {
    top10 += counts[i];
  }
  EXPECT_GT(static_cast<double>(top10) / draws, 0.35);
  // The head is orders of magnitude hotter than the median rank.
  ASSERT_GT(counts.size(), 100u);
  EXPECT_GT(counts.front(), 10 * counts[counts.size() / 2]);
}

TEST(Workload, ZipfUniverseIsDistinctAndSelfPairFree) {
  // Regression: duplicate draws used to alias two ranks onto one pair
  // (inflating its mass beyond the configured Zipf) and self pairs
  // (u, u) could enter the universe.
  WorkloadConfig cfg;
  cfg.kind = WorkloadConfig::Kind::kZipf;
  cfg.hot_pairs = 512;
  cfg.seed = 77;
  WorkloadGenerator gen(40, cfg);  // small n forces heavy collision rates
  const auto& universe = gen.universe();
  // 40 * 39 = 1560 distinct ordered non-self pairs exist, so the full
  // request is satisfiable — and must be satisfied exactly.
  EXPECT_EQ(universe.size(), 512u);
  std::set<std::pair<NodeId, NodeId>> distinct;
  for (const auto& [u, v] : universe) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, 40u);
    EXPECT_LT(v, 40u);
    distinct.insert({u, v});
  }
  EXPECT_EQ(distinct.size(), universe.size());

  // A request beyond the pair space clamps instead of spinning forever.
  cfg.hot_pairs = 100000;
  WorkloadGenerator clamped(12, cfg);
  EXPECT_EQ(clamped.universe().size(), 12u * 11u);

  // Draws stay confined to the universe and never produce self pairs.
  for (const auto& [u, v] : gen.batch(5000)) EXPECT_NE(u, v);
}

TEST(Workload, MirrorEmitsBothOrientationsOfHotPairs) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadConfig::Kind::kZipf;
  cfg.hot_pairs = 16;
  cfg.mirror = true;
  cfg.seed = 5;
  WorkloadGenerator gen(256, cfg);
  const auto head = gen.universe().front();
  bool forward = false, reverse = false;
  for (const auto& p : gen.batch(4000)) {
    if (p == head) forward = true;
    if (p.first == head.second && p.second == head.first) reverse = true;
  }
  EXPECT_TRUE(forward);
  EXPECT_TRUE(reverse);

  // Mirroring stays deterministic in the seed.
  WorkloadGenerator a(256, cfg);
  WorkloadGenerator b(256, cfg);
  EXPECT_EQ(a.batch(1000), b.batch(1000));
}

TEST(Workload, ZipfUniverseIsSeedStable) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadConfig::Kind::kZipf;
  cfg.hot_pairs = 64;
  cfg.seed = 9;
  WorkloadGenerator a(512, cfg);
  WorkloadGenerator b(512, cfg);
  std::set<std::pair<NodeId, NodeId>> ua, ub;
  for (const auto& p : a.batch(5000)) ua.insert(p);
  for (const auto& p : b.batch(5000)) ub.insert(p);
  EXPECT_EQ(ua, ub);

  cfg.seed = 10;
  WorkloadGenerator c(512, cfg);
  std::set<std::pair<NodeId, NodeId>> uc;
  for (const auto& p : c.batch(5000)) uc.insert(p);
  EXPECT_NE(ua, uc);
}

}  // namespace
}  // namespace dsketch
