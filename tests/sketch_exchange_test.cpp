#include <gtest/gtest.h>

#include "congest/sketch_exchange.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/cdg_sketch.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

std::vector<Word> test_payload(std::size_t n) {
  std::vector<Word> words;
  for (std::size_t i = 0; i < n; ++i) words.push_back(1000 + i);
  return words;
}

TEST(SketchExchange, DeliversPayloadIntact) {
  const Graph g = erdos_renyi(100, 0.05, {1, 9}, 3);
  const auto payload = test_payload(37);
  const auto r = exchange_sketch(g, 5, 80, payload);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.words, payload);
}

TEST(SketchExchange, OddAndEvenPayloadSizes) {
  const Graph g = ring(24, {1, 1}, 0);
  for (const std::size_t size : {0u, 1u, 2u, 3u, 16u, 17u}) {
    const auto payload = test_payload(size);
    const auto r = exchange_sketch(g, 0, 12, payload);
    EXPECT_TRUE(r.complete) << "size " << size;
    EXPECT_EQ(r.words, payload) << "size " << size;
  }
}

TEST(SketchExchange, SelfQuery) {
  const Graph g = ring(8, {1, 1}, 0);
  const auto payload = test_payload(9);
  const auto r = exchange_sketch(g, 3, 3, payload);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.words, payload);
}

TEST(SketchExchange, RoundsScaleWithHopsPlusWords) {
  // Path graph: request travels hop(u,v), reply streams back pipelined.
  const Graph g = path(60, {1, 1}, 0);
  const auto payload = test_payload(40);
  const auto r = exchange_sketch(g, 0, 59, payload);
  EXPECT_TRUE(r.complete);
  // 59 hops out + 59 hops back for the first chunk + ~20 chunks pipelined.
  EXPECT_GE(r.stats.rounds, 118u);
  EXPECT_LE(r.stats.rounds, 118u + 25u);
}

TEST(SketchExchange, CheapInRoundsOnHighSGraph) {
  // The point of E8: exchanging a sketch is O(D + words) rounds even when
  // S is huge.
  const Graph g = ring_with_chords(256, 512, 1, 60000, 7);
  const std::uint32_t S = shortest_path_diameter_estimate(g, 4, 1);
  const auto payload = test_payload(30);
  const auto r = exchange_sketch(g, 0, 128, payload);
  EXPECT_TRUE(r.complete);
  EXPECT_LT(r.stats.rounds, static_cast<std::uint64_t>(S));
}

TEST(SketchExchange, WorksUnderAsynchrony) {
  const Graph g = erdos_renyi(80, 0.06, {1, 5}, 9);
  const auto payload = test_payload(25);
  SimConfig cfg;
  cfg.async_max_delay = 5;
  const auto r = exchange_sketch(g, 2, 70, payload, cfg);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.words, payload);
}

TEST(SketchExchange, AdjacentNodes) {
  const Graph g = path(2, {7, 7}, 0);
  const auto payload = test_payload(5);
  const auto r = exchange_sketch(g, 0, 1, payload);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.words, payload);
  // 1 hop request + pipelined reply: a handful of rounds.
  EXPECT_LE(r.stats.rounds, 10u);
}

TEST(SketchExchange, LargePayloadPipelines) {
  const Graph g = path(20, {1, 1}, 0);
  const auto payload = test_payload(400);  // 200 chunks
  const auto r = exchange_sketch(g, 0, 19, payload);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.words, payload);
  // Pipelining: 19 out + 19 back + ~200 chunks, NOT 19 * 200.
  EXPECT_LE(r.stats.rounds, 19u + 19u + 210u);
}

TEST(SketchExchange, EndToEndWithRealLabel) {
  // Fetch a real TZ label across the network and verify the peer can run
  // the distance query with it.
  const Graph g = erdos_renyi(90, 0.06, {1, 9}, 11);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), 3, 5);
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), 3, 6);
  }
  const auto built = build_tz_distributed(g, h, TerminationMode::kOracle);
  const NodeId u = 4, v = 77;
  const auto r = exchange_sketch(g, u, v, serialize_label(built.labels.view(v)));
  ASSERT_TRUE(r.complete);
  const TzLabelBuilder fetched = deserialize_label(v, r.words);
  EXPECT_EQ(tz_query(built.labels.view(u), fetched.view()),
            tz_query(built.labels.view(u), built.labels.view(v)));
}

}  // namespace
}  // namespace dsketch
