// End-to-end fault injection: FaultPlan schedules against the real
// protocols. The sim-level invariants (determinism across thread counts,
// fault counter accounting) live in sim_fuzz_test; this file checks the
// recovery story — the reliable link layer and the termination machinery
// deliver byte-identical TZ labels under loss, duplication, reordering,
// link flaps, and crash/restarts, and the failure modes are graceful and
// observable when tolerance is off.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "congest/fault_plan.hpp"
#include "congest/sim.hpp"
#include "graph/generators.hpp"
#include "obs/round_log.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

Hierarchy usable_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  while (!h.top_level_nonempty()) h = Hierarchy::sample(n, k, ++seed);
  return h;
}

class TzUnderFaults : public ::testing::Test {
 protected:
  TzUnderFaults()
      : g_(erdos_renyi(90, 0.07, {1, 5}, 53)),
        h_(usable_hierarchy(g_.num_nodes(), 2, 54)),
        central_(build_tz_centralized(g_, h_)) {}

  FaultConfig lossy_config() const {
    FaultConfig fc;
    fc.drop_rate = 0.05;
    fc.duplicate_rate = 0.02;
    fc.reorder_rate = 0.05;
    fc.link_faults = 2;
    fc.link_fault_horizon = 50;
    fc.link_down_rounds = 8;
    fc.node_crashes = 2;
    fc.crash_horizon = 50;
    fc.crash_downtime = 10;
    fc.seed = 0xc0ffee;
    return fc;
  }

  Graph g_;
  Hierarchy h_;
  LabelArena central_;
};

TEST_F(TzUnderFaults, EchoTerminationConvergesToExactLabels) {
  // The paper's fully distributed variant (§3.3 echo termination) under
  // the full fault cocktail: with the reliable layer on, the build must
  // complete and the labels must be byte-identical to ground truth —
  // the acceptance bar for E16.
  const FaultPlan plan(g_, lossy_config());
  SimConfig cfg;
  cfg.faults = &plan;
  TzFaultTolerance ft;
  ft.enabled = true;
  ft.rto = 8;
  const auto result =
      build_tz_distributed(g_, h_, TerminationMode::kEcho, cfg, false, 0, ft);
  ASSERT_TRUE(result.completed);
  EXPECT_FALSE(result.stats.hit_round_limit);
  EXPECT_GT(result.retransmits, 0u);
  EXPECT_GT(result.stats.dropped, 0u);
  ASSERT_EQ(result.labels.num_nodes(), central_.num_nodes());
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    EXPECT_TRUE(result.labels.view(u) == central_.view(u)) << "node " << u;
  }
  // The BFS-tree pre-pass runs fault-free by contract.
  EXPECT_EQ(result.tree_stats.dropped, 0u);
}

TEST_F(TzUnderFaults, RepeatedRunsReplayExactly) {
  // Same seed, same plan -> the entire run (labels, stats, retransmit
  // counters) replays exactly. This is the debugging contract: any fault
  // run can be reproduced from its FaultConfig alone.
  const FaultPlan plan(g_, lossy_config());
  TzFaultTolerance ft;
  ft.enabled = true;
  ft.rto = 8;
  SimConfig cfg;
  cfg.faults = &plan;
  const auto a =
      build_tz_distributed(g_, h_, TerminationMode::kOracle, cfg, false, 0, ft);
  const auto b =
      build_tz_distributed(g_, h_, TerminationMode::kOracle, cfg, false, 0, ft);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages, b.stats.messages);
  EXPECT_EQ(a.stats.dropped, b.stats.dropped);
  EXPECT_EQ(a.stats.duplicated, b.stats.duplicated);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.duplicate_discards, b.duplicate_discards);
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    EXPECT_TRUE(a.labels.view(u) == b.labels.view(u)) << "node " << u;
  }
}

TEST_F(TzUnderFaults, WithoutToleranceTheBuildFailsClosed) {
  // Faults without the reliable layer: a lost ECHO stalls termination
  // detection forever. The build must report completed = false with empty
  // labels instead of asserting or returning wrong ones.
  FaultConfig fc;
  fc.drop_rate = 0.15;
  fc.seed = 99;
  const FaultPlan plan(g_, fc);
  SimConfig cfg;
  cfg.faults = &plan;
  cfg.max_rounds = 4000;
  const auto result =
      build_tz_distributed(g_, h_, TerminationMode::kEcho, cfg);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.labels.empty());
}

TEST_F(TzUnderFaults, CleanRunsPayNoTolerancePenaltyInLabels) {
  // Fault tolerance enabled on a fault-free network: the header word costs
  // bandwidth but the labels must be unchanged and nothing retransmits.
  TzFaultTolerance ft;
  ft.enabled = true;
  const auto result =
      build_tz_distributed(g_, h_, TerminationMode::kEcho, {}, false, 0, ft);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.retransmits, 0u);
  EXPECT_EQ(result.stats.dropped, 0u);
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    EXPECT_TRUE(result.labels.view(u) == central_.view(u)) << "node " << u;
  }
}

TEST(FaultPlanSchedule, SampledEventsRespectTheConfig) {
  const Graph g = erdos_renyi(60, 0.08, {1, 5}, 7);
  FaultConfig fc;
  fc.node_crashes = 3;
  fc.crash_horizon = 100;
  fc.crash_downtime = 12;
  fc.link_faults = 4;
  fc.link_fault_horizon = 80;
  fc.link_down_rounds = 9;
  const FaultPlan plan(g, fc);
  ASSERT_EQ(plan.crashes().size(), 3u);
  std::vector<NodeId> victims;
  for (const CrashEvent& c : plan.crashes()) {
    EXPECT_GE(c.at, 1u);
    EXPECT_LT(c.at, fc.crash_horizon);
    EXPECT_EQ(c.restart, c.at + fc.crash_downtime);
    victims.push_back(c.node);
  }
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(std::unique(victims.begin(), victims.end()), victims.end())
      << "crash victims must be distinct";
  // Same config -> identical schedule (the replayability contract).
  const FaultPlan replay(g, fc);
  ASSERT_EQ(replay.crashes().size(), plan.crashes().size());
  for (std::size_t i = 0; i < plan.crashes().size(); ++i) {
    EXPECT_EQ(replay.crashes()[i].node, plan.crashes()[i].node);
    EXPECT_EQ(replay.crashes()[i].at, plan.crashes()[i].at);
  }
}

TEST(FaultObservability, RoundLogCarriesDropCounts) {
  // The per-round telemetry must surface the fault counters so a fault
  // run's loss profile is visible in the round log.
  const Graph g = erdos_renyi(80, 0.06, {1, 5}, 13);
  FaultConfig fc;
  fc.drop_rate = 0.2;
  fc.seed = 5;
  const FaultPlan plan(g, fc);
  class Chatter : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override { ctx.wake(); }
    void on_round(NodeCtx& ctx) override {
      if (ctx.round() < 10) {
        for (std::uint32_t e = 0; e < ctx.degree(); ++e) {
          ctx.send(e, Message{ctx.node()});
        }
        ctx.wake();
      }
    }
  };
  Chatter p;
  std::ostringstream sink;
  obs::RoundLog log(sink);
  SimConfig cfg;
  cfg.faults = &plan;
  cfg.round_log = &log;
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  log.flush();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_NE(sink.str().find("\"dropped\""), std::string::npos);
}

}  // namespace
}  // namespace dsketch
