#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "graph/generators.hpp"
#include "sketch/density_net.hpp"

namespace dsketch {
namespace {

TEST(DensityNet, ProbabilityFormula) {
  // 5 ln n / (eps n), clamped to 1.
  const double p = density_net_probability(1000, 0.1);
  EXPECT_NEAR(p, 5.0 * std::log(1000.0) / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(density_net_probability(100, 1e-9), 1.0);
}

TEST(DensityNet, TinyEpsilonTakesEveryone) {
  const auto net = sample_density_net(50, 1e-9, 3);
  EXPECT_EQ(net.size(), 50u);
}

TEST(DensityNet, SizeNearExpectation) {
  const NodeId n = 5000;
  const double eps = 0.05;
  const auto net = sample_density_net(n, eps, 7);
  const double expected = 5.0 * std::log(static_cast<double>(n)) / eps;
  EXPECT_GT(static_cast<double>(net.size()), 0.5 * expected);
  // Lemma 4.2's bound: |N| <= 10 ln n / eps whp.
  EXPECT_LT(static_cast<double>(net.size()), 2.0 * expected);
}

TEST(DensityNet, DeterministicAndSorted) {
  const auto a = sample_density_net(500, 0.1, 9);
  const auto b = sample_density_net(500, 0.1, 9);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(DensityRadii, BallDefinition) {
  // Path 0-1-2-3-4 unit weights; eps = 0.5 means the ball must hold >= 2.5
  // => 3 nodes; R(0) = 2 (nodes 0,1,2), R(2) = 1 (nodes 1,2,3).
  const Graph g = path(5, {1, 1}, 0);
  const auto r = density_radii(g, 0.5);
  EXPECT_EQ(r[0], 2u);
  EXPECT_EQ(r[2], 1u);
}

TEST(DensityRadii, EpsilonOneIsEccentricity) {
  const Graph g = path(6, {1, 1}, 0);
  const auto r = density_radii(g, 1.0);
  EXPECT_EQ(r[0], 5u);  // ball must include everyone
  EXPECT_EQ(r[2], 3u);
}

class DensityNetProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DensityNetProperty, CoversEveryNodeWithinRadius) {
  const auto [eps, seed] = GetParam();
  const Graph g = erdos_renyi(150, 0.05, {1, 9}, seed);
  const auto net = sample_density_net(g.num_nodes(), eps, seed * 3 + 1);
  // Lemma 4.2 holds whp; across this parameter grid we demand zero
  // violations (failure probability ~ n^-3 per node).
  EXPECT_EQ(count_density_net_violations(g, net, eps), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DensityNetProperty,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.25, 0.5),
                       ::testing::Values(1u, 2u, 3u, 4u)));

}  // namespace
}  // namespace dsketch
