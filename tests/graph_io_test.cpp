#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace dsketch {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  const Graph g = erdos_renyi(50, 0.1, {1, 12}, 21);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.neighbors(u);
    const auto b = h.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n3 2\n# another\n0 1 5\n1 2 7\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream ss("nonsense\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream ss("2 1\n0 5 1\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream ss("2 1\n1 1 1\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsCountMismatch) {
  std::stringstream ss("3 2\n0 1 1\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = ring(16, {2, 9}, 5);
  const std::string path = ::testing::TempDir() + "/dsketch_io_test.graph";
  write_graph_file(path, g);
  const Graph h = read_graph_file(path);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.num_edges(), 16u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/definitely/missing.graph"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// streaming edge-list ingest (SNAP / DIMACS -> CSR, no edge vector)

TEST(Ingest, SnapRemapsSparseIdsFirstSeen) {
  // SNAP-style: '#' comments, sparse ids, no weights (default 1).
  std::stringstream ss(
      "# Directed graph: web-Toy.txt\n"
      "# FromNodeId\tToNodeId\n"
      "9000001\t42\n"
      "42\t7\n"
      "9000001\t7\n");
  IngestStats stats;
  const Graph g = ingest_edge_list(ss, IngestFormat::kSnap, &stats);
  EXPECT_EQ(g.num_nodes(), 3u);  // 9000001 -> 0, 42 -> 1, 7 -> 2
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(stats.edge_lines, 3u);
  EXPECT_EQ(stats.self_loops, 0u);
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].to, 1u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 1u);
}

TEST(Ingest, SnapCollapsesBothDirectionsAndKeepsMinWeight) {
  // A SNAP file listing both directions of each edge must not double the
  // edge; conflicting weights resolve to the minimum.
  std::stringstream ss("0 1 5\n1 0 3\n0 2 7\n2 0 7\n");
  const Graph g = ingest_edge_list(ss, IngestFormat::kSnap);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 3u);
  EXPECT_EQ(g.neighbors(0)[1].weight, 7u);
}

TEST(Ingest, SnapCountsAndDropsSelfLoops) {
  std::stringstream ss("0 0\n0 1\n5 5\n");
  IngestStats stats;
  const Graph g = ingest_edge_list(ss, IngestFormat::kSnap, &stats);
  EXPECT_EQ(stats.self_loops, 2u);
  EXPECT_EQ(stats.edge_lines, 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Ingest, DimacsParsesArcsOneIndexed) {
  std::stringstream ss(
      "c 9th DIMACS shortest paths\n"
      "p sp 4 3\n"
      "a 1 2 10\n"
      "a 2 3 20\n"
      "a 4 1 30\n");
  const Graph g = ingest_edge_list(ss, IngestFormat::kDimacs);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  // DIMACS node 1 is the first seen -> dense id 0.
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0].weight, 10u);
}

TEST(Ingest, AutoSniffsEachDialect) {
  std::stringstream dimacs("c comment\np sp 2 1\na 1 2 4\n");
  EXPECT_EQ(ingest_edge_list(dimacs, IngestFormat::kAuto).num_edges(), 1u);
  std::stringstream snap("# comment\n3 4\n");
  const Graph g = ingest_edge_list(snap, IngestFormat::kAuto);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(Ingest, MatchesFromEdgesOnAGeneratedGraph) {
  // Export a generated graph as a SNAP edge list, ingest it back, and
  // require the same CSR the Edge-vector path builds — up to the ingester's
  // first-seen id remap, which the test replays from the edge stream.
  const Graph g = erdos_renyi(60, 0.1, {1, 12}, 31);
  std::stringstream ss;
  std::vector<NodeId> remap(g.num_nodes(), kInvalidNode);
  NodeId next = 0;
  for (const Edge& e : g.edges()) {
    ss << e.u << '\t' << e.v << '\t' << e.weight << '\n';
    if (remap[e.u] == kInvalidNode) remap[e.u] = next++;
    if (remap[e.v] == kInvalidNode) remap[e.v] = next++;
  }
  ASSERT_EQ(next, g.num_nodes()) << "seed left an isolated node";
  const Graph h = ingest_edge_list(ss, IngestFormat::kSnap);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.neighbors(u);
    std::vector<HalfEdge> mapped;
    for (const HalfEdge& he : a) mapped.push_back({remap[he.to], he.weight});
    std::sort(mapped.begin(), mapped.end(),
              [](const HalfEdge& x, const HalfEdge& y) { return x.to < y.to; });
    const auto b = h.neighbors(remap[u]);
    ASSERT_EQ(mapped.size(), b.size()) << "node " << u;
    for (std::size_t i = 0; i < mapped.size(); ++i) {
      EXPECT_EQ(mapped[i].to, b[i].to);
      EXPECT_EQ(mapped[i].weight, b[i].weight);
    }
  }
}

TEST(Ingest, RejectsMalformedInput) {
  {
    std::stringstream ss("0 1 2 3\n");  // four fields
    EXPECT_THROW(ingest_edge_list(ss, IngestFormat::kSnap),
                 std::runtime_error);
  }
  {
    std::stringstream ss("0 abc\n");
    EXPECT_THROW(ingest_edge_list(ss, IngestFormat::kSnap),
                 std::runtime_error);
  }
  {
    std::stringstream ss("a 0 1 5\n");  // DIMACS ids are 1-indexed
    EXPECT_THROW(ingest_edge_list(ss, IngestFormat::kDimacs),
                 std::runtime_error);
  }
  {
    std::stringstream ss("x 1 2 5\n");  // unknown DIMACS line kind
    EXPECT_THROW(ingest_edge_list(ss, IngestFormat::kDimacs),
                 std::runtime_error);
  }
  {
    std::stringstream ss("0 1 4294967296\n");  // weight > 32 bits
    EXPECT_THROW(ingest_edge_list(ss, IngestFormat::kSnap),
                 std::runtime_error);
  }
  {
    std::stringstream ss("# only comments\n\n");
    EXPECT_THROW(ingest_edge_list(ss, IngestFormat::kSnap),
                 std::runtime_error);
  }
}

TEST(Ingest, FileEntryPointAndFormatNames) {
  const std::string path = ::testing::TempDir() + "/dsketch_ingest_test.txt";
  {
    std::ofstream out(path);
    out << "# tiny\n0 1\n1 2\n";
  }
  IngestStats stats;
  const Graph g =
      ingest_edge_list_file(path, parse_ingest_format("auto"), &stats);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(stats.edge_lines, 2u);
  EXPECT_EQ(parse_ingest_format("snap"), IngestFormat::kSnap);
  EXPECT_EQ(parse_ingest_format("dimacs"), IngestFormat::kDimacs);
  EXPECT_THROW(parse_ingest_format("csv"), std::runtime_error);
  EXPECT_THROW(ingest_edge_list_file("/nonexistent/edges.txt",
                                     IngestFormat::kAuto),
               std::runtime_error);
}

}  // namespace
}  // namespace dsketch
