#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"

namespace dsketch {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  const Graph g = erdos_renyi(50, 0.1, {1, 12}, 21);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.neighbors(u);
    const auto b = h.neighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# a comment\n\n3 2\n# another\n0 1 5\n1 2 7\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(GraphIo, RejectsBadHeader) {
  std::stringstream ss("nonsense\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::stringstream ss("2 1\n0 5 1\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::stringstream ss("2 1\n1 1 1\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsCountMismatch) {
  std::stringstream ss("3 2\n0 1 1\n");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, RejectsEmptyInput) {
  std::stringstream ss("");
  EXPECT_THROW(read_graph(ss), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = ring(16, {2, 9}, 5);
  const std::string path = ::testing::TempDir() + "/dsketch_io_test.graph";
  write_graph_file(path, g);
  const Graph h = read_graph_file(path);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.num_edges(), 16u);
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/definitely/missing.graph"),
               std::runtime_error);
}

}  // namespace
}  // namespace dsketch
