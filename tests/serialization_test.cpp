#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "core/serialization.hpp"
#include "graph/generators.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

TEST(Serialization, TzLabelsRoundTrip) {
  const Graph g = erdos_renyi(60, 0.08, {1, 9}, 3);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), 3, 5);
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), 3, 6);
  }
  const auto r = build_tz_distributed(g, h, TerminationMode::kOracle);
  std::stringstream ss;
  write_tz_labels(ss, r.labels);
  const auto back = read_tz_labels(ss);
  ASSERT_EQ(back.num_nodes(), r.labels.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_TRUE(back.view(u) == r.labels.view(u)) << "node " << u;
  }
}

TEST(Serialization, SlackRoundTrip) {
  const Graph g = ring(40, {1, 7}, 2);
  const auto r = build_slack_sketches(g, 0.25, 5);
  std::stringstream ss;
  write_slack_sketches(ss, r.sketches, g.num_nodes());
  const SlackSketchSet back = read_slack_sketches(ss);
  EXPECT_EQ(back.net(), r.sketches.net());
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      EXPECT_EQ(back.query(u, v), r.sketches.query(u, v));
    }
  }
}

TEST(Serialization, BadMagicRejected) {
  std::stringstream ss("garbage 5\n");
  EXPECT_THROW(read_tz_labels(ss), std::runtime_error);
  std::stringstream ss2("dsketch-tz-v1 2\n0 1\n");  // truncated words
  EXPECT_THROW(read_tz_labels(ss2), std::runtime_error);
}

class EngineRoundTrip : public ::testing::TestWithParam<Scheme> {};

TEST_P(EngineRoundTrip, SaveLoadAnswersIdentically) {
  const Graph g = erdos_renyi(70, 0.08, {1, 9}, 9);
  BuildConfig cfg;
  cfg.scheme = GetParam();
  cfg.k = 2;
  cfg.epsilon = 0.25;
  const SketchEngine built(g, cfg);
  std::stringstream ss;
  built.save(ss);
  const SketchEngine loaded = SketchEngine::load(ss);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      EXPECT_EQ(loaded.query(u, v), built.query(u, v));
    }
    EXPECT_EQ(loaded.size_words(u), built.size_words(u));
  }
  EXPECT_EQ(loaded.config().scheme, cfg.scheme);
}

INSTANTIATE_TEST_SUITE_P(Schemes, EngineRoundTrip,
                         ::testing::Values(Scheme::kThorupZwick,
                                           Scheme::kSlack, Scheme::kCdg,
                                           Scheme::kGraceful));

TEST(Serialization, LoadedEngineRejectsGarbage) {
  std::stringstream ss("not a sketch file");
  EXPECT_THROW(SketchEngine::load(ss), std::runtime_error);
}

TEST(Serialization, HeaderPersistsEpsilonForFlagValidation) {
  const Graph g = ring(30, {1, 4}, 2);
  BuildConfig cfg;
  cfg.scheme = Scheme::kSlack;
  cfg.epsilon = 0.375;
  const SketchEngine built(g, cfg);
  std::stringstream ss;
  built.save(ss);
  const SketchEngine loaded = SketchEngine::load(ss);
  EXPECT_EQ(loaded.config().scheme, Scheme::kSlack);
  EXPECT_DOUBLE_EQ(loaded.config().epsilon, 0.375);
  EXPECT_EQ(loaded.num_nodes(), g.num_nodes());
}

TEST(Serialization, LoadsHeadersWithoutEpsilonField) {
  // Files written before the epsilon field carry only "scheme <s> <n> <k>".
  const Graph g = ring(20, {1, 3}, 4);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  const SketchEngine built(g, cfg);
  std::stringstream ss;
  built.save(ss);
  std::string text = ss.str();
  const auto nl = text.find('\n');
  std::string header = text.substr(0, nl);
  header.resize(header.rfind(' '));  // drop the epsilon token
  std::stringstream old_format(header + text.substr(nl));
  const SketchEngine loaded = SketchEngine::load(old_format);
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    EXPECT_EQ(loaded.query(u, (u + 7) % g.num_nodes()),
              built.query(u, (u + 7) % g.num_nodes()));
  }
}

}  // namespace
}  // namespace dsketch
