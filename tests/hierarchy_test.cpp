#include <gtest/gtest.h>

#include <cmath>

#include "sketch/hierarchy.hpp"

namespace dsketch {
namespace {

TEST(Hierarchy, KEqualsOneIsJustV) {
  const Hierarchy h = Hierarchy::sample(100, 1, 3);
  for (NodeId u = 0; u < 100; ++u) {
    EXPECT_TRUE(h.in_level(u, 0));
    EXPECT_EQ(h.level_of(u), 1u);
  }
  EXPECT_EQ(h.level_members(0).size(), 100u);
  EXPECT_TRUE(h.top_level_nonempty());
}

TEST(Hierarchy, LevelsAreNested) {
  const Hierarchy h = Hierarchy::sample(1000, 4, 7);
  for (std::uint32_t i = 0; i + 1 < 4; ++i) {
    const auto upper = h.level_members(i + 1);
    for (const NodeId u : upper) {
      EXPECT_TRUE(h.in_level(u, i));  // A_{i+1} subset of A_i
    }
    EXPECT_LE(upper.size(), h.level_members(i).size());
  }
}

TEST(Hierarchy, SamplingRateNearExpectation) {
  const NodeId n = 4096;
  const std::uint32_t k = 3;
  const Hierarchy h = Hierarchy::sample(n, k, 11);
  const double p = std::pow(n, -1.0 / k);
  const double expected1 = n * p;
  const auto a1 = h.level_members(1).size();
  EXPECT_GT(static_cast<double>(a1), 0.5 * expected1);
  EXPECT_LT(static_cast<double>(a1), 1.7 * expected1);
}

TEST(Hierarchy, PhaseSourcesPartitionA0) {
  const Hierarchy h = Hierarchy::sample(500, 3, 13);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (const NodeId u : h.phase_sources(i)) {
      EXPECT_EQ(h.level_of(u), i + 1);
      ++total;
    }
  }
  EXPECT_EQ(total, 500u);  // every node sources exactly one phase
}

TEST(Hierarchy, SubsetSamplingLeavesOthersAtZero) {
  const std::vector<NodeId> ground{2, 4, 6, 8};
  const Hierarchy h = Hierarchy::sample_on_subset(10, 2, ground, 0.5, 5);
  for (NodeId u = 0; u < 10; ++u) {
    const bool in_ground = u % 2 == 0 && u >= 2;
    EXPECT_EQ(h.level_of(u) > 0, in_ground);
  }
}

TEST(Hierarchy, DeterministicForSeed) {
  const Hierarchy a = Hierarchy::sample(200, 4, 99);
  const Hierarchy b = Hierarchy::sample(200, 4, 99);
  for (NodeId u = 0; u < 200; ++u) {
    EXPECT_EQ(a.level_of(u), b.level_of(u));
  }
}

TEST(Hierarchy, TopLevelEmptinessDetected) {
  // k=2 over a single ground node with p=0: top level must be empty.
  const Hierarchy h = Hierarchy::sample_on_subset(5, 2, {0}, 0.0, 1);
  EXPECT_FALSE(h.top_level_nonempty());
}

class HierarchySweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(HierarchySweep, InvariantsHold) {
  const auto [k, seed] = GetParam();
  const NodeId n = 300;
  const Hierarchy h = Hierarchy::sample(n, k, seed);
  EXPECT_EQ(h.k(), k);
  EXPECT_EQ(h.n(), n);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_GE(h.level_of(u), 1u);
    EXPECT_LE(h.level_of(u), k);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, HierarchySweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace dsketch
