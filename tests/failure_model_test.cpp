#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "dynamics/failure_model.hpp"
#include "graph/generators.hpp"

namespace dsketch {
namespace {

TEST(FailureModel, PlanRespectsFractionAndConnectivity) {
  const Graph g = erdos_renyi(200, 0.05, {1, 9}, 3);
  const FailurePlan plan = sample_edge_failures(g, 0.2, 7);
  EXPECT_LE(plan.failed_edges.size(),
            static_cast<std::size_t>(0.2 * g.num_edges()) + 1);
  EXPECT_GT(plan.failed_edges.size(), 0u);
  const Graph degraded = apply_failures(g, plan);
  EXPECT_TRUE(degraded.connected());
  EXPECT_EQ(degraded.num_edges(), g.num_edges() - plan.failed_edges.size());
}

TEST(FailureModel, BridgesSurvive) {
  // A path: every edge is a bridge, so nothing can fail.
  const Graph g = path(30, {1, 5}, 1);
  const FailurePlan plan = sample_edge_failures(g, 0.5, 3);
  EXPECT_TRUE(plan.failed_edges.empty());
}

TEST(FailureModel, ZeroFractionIsNoop) {
  const Graph g = ring(20, {1, 3}, 2);
  const FailurePlan plan = sample_edge_failures(g, 0.0, 1);
  EXPECT_TRUE(plan.failed_edges.empty());
  const Graph same = apply_failures(g, plan);
  EXPECT_EQ(same.num_edges(), g.num_edges());
}

TEST(FailureModel, DeterministicForSeed) {
  const Graph g = erdos_renyi(150, 0.06, {1, 9}, 5);
  const FailurePlan a = sample_edge_failures(g, 0.15, 11);
  const FailurePlan b = sample_edge_failures(g, 0.15, 11);
  EXPECT_EQ(a.failed_edges, b.failed_edges);
}

TEST(FailureModel, DistancesOnlyGrowAfterFailures) {
  const Graph g = erdos_renyi(100, 0.08, {1, 9}, 9);
  const Graph degraded = apply_failures(g, sample_edge_failures(g, 0.3, 5));
  const auto before = dijkstra(g, 0);
  const auto after = dijkstra(degraded, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(after[v], before[v]);
  }
}

TEST(FailureModel, StaleSketchesUnderestimateAfterChurn) {
  // The point of E11: stale sketches lose the one-sided guarantee.
  const Graph g = erdos_renyi(200, 0.05, {1, 9}, 13);
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  const SketchEngine engine(g, cfg);  // built on the healthy graph
  const Graph degraded = apply_failures(g, sample_edge_failures(g, 0.3, 3));
  const StalenessReport report = evaluate_staleness(
      degraded, [&](NodeId u, NodeId v) { return engine.query(u, v); }, 10,
      7);
  EXPECT_GT(report.pairs, 0u);
  // Some pair's estimate now routes through a dead edge.
  EXPECT_GT(report.underestimates, 0u);
}

TEST(FailureModel, RebuiltSketchesRestoreGuarantee) {
  const Graph g = erdos_renyi(150, 0.06, {1, 9}, 17);
  const Graph degraded = apply_failures(g, sample_edge_failures(g, 0.25, 9));
  BuildConfig cfg;
  cfg.scheme = Scheme::kThorupZwick;
  cfg.k = 2;
  const SketchEngine rebuilt(degraded, cfg);
  const StalenessReport report = evaluate_staleness(
      degraded, [&](NodeId u, NodeId v) { return rebuilt.query(u, v); }, 10,
      7);
  EXPECT_EQ(report.underestimates, 0u);
  EXPECT_LE(report.stretch.max(), 3.0);
}

class FailureSweep : public ::testing::TestWithParam<double> {};

TEST_P(FailureSweep, DegradedGraphStaysConnected) {
  const double fraction = GetParam();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Graph g = random_graph_nm(120, 360, {1, 9}, seed);
    const Graph d =
        apply_failures(g, sample_edge_failures(g, fraction, seed + 5));
    EXPECT_TRUE(d.connected());
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, FailureSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.7));

}  // namespace
}  // namespace dsketch
