#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_io.hpp"

namespace dsketch::obs {
namespace {

/// Every test that starts a session stops it on exit, so a failing test
/// can't leave tracing enabled for its neighbors.
struct SessionGuard {
  ~SessionGuard() { TraceSession::stop(); }
};

TEST(Trace, DisabledIsANoOp) {
  TraceSession::stop();
  EXPECT_FALSE(TraceSession::enabled());
  EXPECT_EQ(TraceSession::active(), nullptr);
  {
    const Span span("ignored");
    trace_counter("also_ignored", 42);
  }
  EXPECT_EQ(TraceSession::active(), nullptr);
}

TEST(Trace, SpansRoundTripThroughTheParser) {
  SessionGuard guard;
  const std::shared_ptr<TraceSession> session = TraceSession::start();
  EXPECT_TRUE(TraceSession::enabled());
  {
    const Span outer("outer", 7);
    {
      const Span inner("inner");
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    trace_counter("items", 3);
  }
  TraceSession::stop();
  EXPECT_FALSE(TraceSession::enabled());
  EXPECT_EQ(session->event_count(), 3u);

  std::ostringstream json;
  session->write_chrome_trace(json);
  const std::vector<ParsedEvent> events = parse_chrome_trace(json.str());
  ASSERT_EQ(events.size(), 3u);

  const auto find = [&](const std::string& name) -> const ParsedEvent& {
    for (const ParsedEvent& e : events) {
      if (e.name == name) return e;
    }
    ADD_FAILURE() << "missing event " << name;
    return events.front();
  };
  const ParsedEvent& outer = find("outer");
  EXPECT_EQ(outer.ph, 'X');
  EXPECT_TRUE(outer.has_dur);
  EXPECT_TRUE(outer.has_arg_value);
  EXPECT_EQ(outer.arg_value, 7.0);
  const ParsedEvent& inner = find("inner");
  EXPECT_EQ(inner.ph, 'X');
  EXPECT_GE(inner.dur_us, 150.0);  // slept 200us inside
  // inner nests inside outer on the same thread.
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 0.002);
  const ParsedEvent& counter = find("items");
  EXPECT_EQ(counter.ph, 'C');
  EXPECT_TRUE(counter.has_arg_value);
  EXPECT_EQ(counter.arg_value, 3.0);

  EXPECT_EQ(check_span_nesting(events), "");
}

TEST(Trace, NestingCheckerFlagsOverlap) {
  // Hand-built malformed trace: two spans on one tid that overlap
  // without containment. The checker must name the violation.
  std::vector<ParsedEvent> events(2);
  events[0] = {"a", 'X', 1, 0.0, 10.0, true, 0, false};
  events[1] = {"b", 'X', 1, 5.0, 10.0, true, 0, false};
  EXPECT_NE(check_span_nesting(events), "");
  // Same two spans on different threads: fine.
  events[1].tid = 2;
  EXPECT_EQ(check_span_nesting(events), "");
  // Proper containment on one tid: fine.
  events[1] = {"b", 'X', 1, 2.0, 3.0, true, 0, false};
  EXPECT_EQ(check_span_nesting(events), "");
}

TEST(Trace, ParserRejectsMalformedInput) {
  EXPECT_THROW(parse_chrome_trace(std::string("not json")),
               std::runtime_error);
  EXPECT_THROW(parse_chrome_trace(std::string("{\"noTraceEvents\":1}")),
               std::runtime_error);
  EXPECT_THROW(parse_chrome_trace(std::string("{\"traceEvents\":{}}")),
               std::runtime_error);
}

TEST(Trace, BufferCapDropsInsteadOfGrowing) {
  SessionGuard guard;
  const std::shared_ptr<TraceSession> session = TraceSession::start(8);
  for (int i = 0; i < 50; ++i) {
    const Span span("tick");
  }
  TraceSession::stop();
  EXPECT_EQ(session->event_count(), 8u);
  EXPECT_EQ(session->dropped(), 42u);
}

TEST(Trace, SessionOutlivesStopWhileSpansAreOpen) {
  // A span opened before stop() must close into the detached session
  // without touching freed memory; the session's buffer still holds it.
  std::shared_ptr<TraceSession> session = TraceSession::start();
  auto span = std::make_unique<Span>("straddles_stop");
  TraceSession::stop();
  EXPECT_FALSE(TraceSession::enabled());
  span.reset();  // closes after the session was uninstalled
  EXPECT_EQ(session->event_count(), 1u);
}

TEST(Trace, MultiThreadedSpansKeepPerThreadNesting) {
  SessionGuard guard;
  const std::shared_ptr<TraceSession> session = TraceSession::start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        const Span outer("outer");
        const Span inner("inner");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  TraceSession::stop();
  EXPECT_EQ(session->event_count(), 4u * 50u * 2u);

  std::ostringstream json;
  session->write_chrome_trace(json);
  const std::vector<ParsedEvent> events = parse_chrome_trace(json.str());
  EXPECT_EQ(check_span_nesting(events), "");
  // All four worker threads got distinct ids.
  std::vector<std::uint32_t> tids;
  for (const ParsedEvent& e : events) {
    if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
      tids.push_back(e.tid);
    }
  }
  EXPECT_EQ(tids.size(), 4u);
}

TEST(Trace, ConcurrentRecordWhileStopping) {
  // TSan probe: writers race session install/uninstall. No assertion
  // beyond "no crash, no data race" — every recorded event landed in
  // whichever session was active when its span opened.
  for (int iter = 0; iter < 10; ++iter) {
    const std::shared_ptr<TraceSession> session = TraceSession::start(1 << 12);
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (int t = 0; t < 3; ++t) {
      writers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const Span span("work");
          trace_counter("n", 1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    TraceSession::stop();
    stop.store(true, std::memory_order_release);
    for (std::thread& w : writers) w.join();
  }
  SUCCEED();
}

}  // namespace
}  // namespace dsketch::obs
