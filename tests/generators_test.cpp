#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"

namespace dsketch {
namespace {

TEST(Generators, ErdosRenyiConnectedAndSeeded) {
  const Graph a = erdos_renyi(200, 0.02, {1, 10}, 42);
  const Graph b = erdos_renyi(200, 0.02, {1, 10}, 42);
  const Graph c = erdos_renyi(200, 0.02, {1, 10}, 43);
  EXPECT_TRUE(a.connected());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_NE(a.num_edges(), c.num_edges());  // overwhelmingly likely
}

TEST(Generators, ErdosRenyiEdgeCountNearExpectation) {
  const NodeId n = 500;
  const double p = 0.02;
  const Graph g = erdos_renyi(n, p, {1, 1}, 7);
  const double expected = p * n * (n - 1) / 2.0;
  // backbone adds at most n-1 edges
  EXPECT_GT(static_cast<double>(g.num_edges()), 0.7 * expected);
  EXPECT_LT(static_cast<double>(g.num_edges()), 1.3 * expected + n);
}

TEST(Generators, RandomGraphNmHitsTarget) {
  const Graph g = random_graph_nm(300, 900, {1, 5}, 3);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.num_edges(), 900u);
  EXPECT_LE(g.num_edges(), 900u + 299u);
}

TEST(Generators, GridDimensions) {
  const Graph g = grid2d(5, 7, {1, 1}, 0);
  EXPECT_EQ(g.num_nodes(), 35u);
  EXPECT_EQ(g.num_edges(), 5u * 6 + 4u * 7);  // horizontal + vertical
  EXPECT_TRUE(g.connected());
}

TEST(Generators, TorusIsFourRegular) {
  const Graph g = torus2d(6, 6, {1, 1}, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(Generators, RingAndPath) {
  const Graph r = ring(10, {1, 1}, 0);
  EXPECT_EQ(r.num_edges(), 10u);
  for (NodeId u = 0; u < 10; ++u) EXPECT_EQ(r.degree(u), 2u);
  const Graph p = path(10, {1, 1}, 0);
  EXPECT_EQ(p.num_edges(), 9u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(5), 2u);
}

TEST(Generators, HypercubeStructure) {
  const Graph g = hypercube(4, {1, 1}, 0);
  EXPECT_EQ(g.num_nodes(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n * dim / 2
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4u);
}

TEST(Generators, BarabasiAlbertConnectedAndSkewed) {
  const Graph g = barabasi_albert(400, 2, {1, 1}, 9);
  EXPECT_TRUE(g.connected());
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.degree(u));
  }
  EXPECT_GT(max_deg, 10u);  // hubs exist
}

TEST(Generators, WattsStrogatzConnected) {
  const Graph g = watts_strogatz(200, 3, 0.1, {1, 4}, 5);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.num_edges(), 200u * 3 / 2);
}

TEST(Generators, RandomTreeHasNMinusOneEdges) {
  const Graph g = random_tree(128, {1, 8}, 2);
  EXPECT_EQ(g.num_edges(), 127u);
  EXPECT_TRUE(g.connected());
}

TEST(Generators, RingWithChords) {
  const Graph g = ring_with_chords(100, 30, 50, 1, 4);
  EXPECT_TRUE(g.connected());
  EXPECT_GE(g.num_edges(), 100u + 25u);  // chords may collide slightly
}

TEST(Generators, IspTwoLevel) {
  const Graph g = isp_two_level(300, 10, {1, 3}, {5, 20}, 6);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.num_nodes(), 300u);
}

TEST(Generators, StarAndComplete) {
  const Graph s = star(50, {1, 1}, 0);
  EXPECT_EQ(s.degree(0), 49u);
  const Graph k = complete(8, {1, 1}, 0);
  EXPECT_EQ(k.num_edges(), 28u);
}

TEST(Generators, CaterpillarShape) {
  const Graph g = caterpillar(10, 3, 100, 0);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_TRUE(g.connected());
  EXPECT_EQ(g.degree(39), 1u);  // legs are leaves
}

TEST(Generators, KaryTreeStructure) {
  const Graph g = kary_tree(3, 4, {1, 1}, 0);
  EXPECT_EQ(g.num_nodes(), 40u);  // 1 + 3 + 9 + 27
  EXPECT_EQ(g.num_edges(), 39u);
  EXPECT_EQ(g.degree(0), 3u);   // root
  EXPECT_EQ(g.degree(39), 1u);  // a leaf
  EXPECT_TRUE(g.connected());
}

TEST(Generators, BarbellStructure) {
  const Graph g = barbell(10, 5, {1, 1}, 0);
  EXPECT_EQ(g.num_nodes(), 25u);
  EXPECT_TRUE(g.connected());
  // Clique nodes have degree >= 9; a middle bridge node has degree 2.
  EXPECT_GE(g.degree(0), 9u);
  EXPECT_EQ(g.degree(12), 2u);
}

TEST(Generators, KroneckerConnectedAndSkewed) {
  const Graph g = kronecker(9, 0.57, 0.19, 0.19, 0.05, {1, 4}, 7);
  EXPECT_EQ(g.num_nodes(), 512u);
  EXPECT_TRUE(g.connected());
  std::size_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.degree(u));
  }
  EXPECT_GT(max_deg, 15u);  // heavy-tailed degrees
}

TEST(Generators, GeometricConnected) {
  const Graph g = random_geometric(300, 0.12, 8, true);
  EXPECT_TRUE(g.connected());
  EXPECT_GT(g.num_edges(), 300u);
}

// Every generator must produce a connected graph for any seed (property).
class GeneratorConnectivity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorConnectivity, AllGeneratorsConnected) {
  const std::uint64_t seed = GetParam();
  EXPECT_TRUE(erdos_renyi(100, 0.01, {1, 9}, seed).connected());
  EXPECT_TRUE(random_graph_nm(100, 150, {1, 9}, seed).connected());
  EXPECT_TRUE(random_geometric(100, 0.1, seed).connected());
  EXPECT_TRUE(barabasi_albert(100, 2, {1, 9}, seed).connected());
  EXPECT_TRUE(watts_strogatz(100, 2, 0.2, {1, 9}, seed).connected());
  EXPECT_TRUE(random_tree(100, {1, 9}, seed).connected());
  EXPECT_TRUE(ring_with_chords(100, 20, 10, 1, seed).connected());
  EXPECT_TRUE(isp_two_level(100, 8, {1, 2}, {3, 9}, seed).connected());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorConnectivity,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace dsketch
