// Simulator invariant fuzzing: a protocol that sends random traffic while
// the test audits the model guarantees from the receiving side —
//   - conservation: every sent message is delivered exactly once;
//   - capacity: in synchronous mode at most one message arrives per edge
//     per direction per round;
//   - FIFO per link in synchronous mode;
//   - determinism across runs.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "congest/bfs_tree.hpp"
#include "congest/fault_plan.hpp"
#include "congest/sim.hpp"
#include "graph/generators.hpp"
#include "sketch/hierarchy.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

class FuzzProtocol : public Protocol {
 public:
  FuzzProtocol(NodeId n, std::uint64_t seed, int rounds_of_chatter)
      : rngs_(), chatter_rounds_(rounds_of_chatter) {
    rngs_.reserve(n);
    for (NodeId u = 0; u < n; ++u) rngs_.emplace_back(seed ^ (u * 0x9e37ULL));
    last_seq_per_edge_.resize(n);
  }

  void on_start(NodeCtx& ctx) override {
    ctx.wake();
  }

  void on_round(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    auto& rng = rngs_[u];
    // Audit inbound: per-round per-edge multiplicity and FIFO sequence.
    std::map<std::uint32_t, int> seen_this_round;
    for (const Inbound& in : ctx.inbox()) {
      ++delivered_;
      ++seen_this_round[in.local_edge];
      const Word seq = in.msg.at(1);
      auto& last = last_seq_per_edge_[u];
      if (last.size() <= in.local_edge) last.resize(ctx.degree(), 0);
      EXPECT_GT(seq, last[in.local_edge]) << "FIFO violated";
      last[in.local_edge] = seq;
    }
    for (const auto& [edge, count] : seen_this_round) {
      EXPECT_EQ(count, 1) << "edge capacity violated at node " << u;
    }
    // Random chatter for a bounded number of rounds.
    if (static_cast<int>(ctx.round()) < chatter_rounds_) {
      const std::uint32_t deg = ctx.degree();
      for (std::uint32_t e = 0; e < deg; ++e) {
        if (rng.bernoulli(0.6)) {
          ctx.send(e, Message{u, ++send_seq_});
          ++sent_;
        }
      }
      ctx.wake();
    }
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  std::vector<Rng> rngs_;
  int chatter_rounds_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  Word send_seq_ = 0;
  // last sequence number seen per (node, local edge)
  std::vector<std::vector<Word>> last_seq_per_edge_;
};

class SimFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SimFuzz, ConservationCapacityFifo) {
  const auto [seed, chatter] = GetParam();
  const Graph g = erdos_renyi(60, 0.08, {1, 5}, seed);
  FuzzProtocol p(g.num_nodes(), seed * 17 + 1, chatter);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_FALSE(stats.hit_round_limit);
  EXPECT_EQ(p.sent(), p.delivered());
  EXPECT_EQ(p.sent(), stats.messages);
}

INSTANTIATE_TEST_SUITE_P(Grid, SimFuzz,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(3, 10, 25)));

TEST(SimFuzz, AsyncConservesMessages) {
  const Graph g = erdos_renyi(50, 0.1, {1, 5}, 9);
  // Async delivery may reorder (FIFO audit disabled by construction: each
  // sender uses a global sequence so cross-edge ordering doesn't apply).
  class AsyncCounter : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() % 3 == 0) {
        for (std::uint32_t e = 0; e < ctx.degree(); ++e) {
          for (int i = 0; i < 4; ++i) {
            ctx.send(e, Message{static_cast<Word>(i)});
            ++sent_;
          }
        }
      }
    }
    void on_round(NodeCtx& ctx) override {
      delivered_ += ctx.inbox().size();
    }
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
  };
  AsyncCounter p;
  SimConfig cfg;
  cfg.async_max_delay = 7;
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  EXPECT_EQ(p.sent_, p.delivered_);
  EXPECT_EQ(stats.messages, p.sent_);
}

// Like FuzzProtocol, but all audit state is node-owned so the protocol is
// safe under parallel stepping; counters are reduced after the run.
class ThreadedFuzzProtocol : public Protocol {
 public:
  ThreadedFuzzProtocol(NodeId n, std::uint64_t seed, int rounds_of_chatter)
      : nodes_(n), chatter_rounds_(rounds_of_chatter) {
    for (NodeId u = 0; u < n; ++u) {
      nodes_[u].rng = Rng(seed ^ (u * 0x9e37ULL));
    }
  }

  void on_start(NodeCtx& ctx) override { ctx.wake(); }

  void on_round(NodeCtx& ctx) override {
    NodeState& s = nodes_[ctx.node()];
    std::map<std::uint32_t, int> seen_this_round;
    std::uint32_t prev_edge = 0;
    bool first = true;
    for (const Inbound& in : ctx.inbox()) {
      ++s.delivered;
      ++seen_this_round[in.local_edge];
      // Canonical inbox order: non-decreasing local edge.
      if (!first) EXPECT_GE(in.local_edge, prev_edge) << "inbox unordered";
      prev_edge = in.local_edge;
      first = false;
      const Word seq = in.msg.at(1);
      if (s.last_seq.size() <= in.local_edge) {
        s.last_seq.resize(ctx.degree(), 0);
      }
      EXPECT_GT(seq, s.last_seq[in.local_edge]) << "FIFO violated";
      s.last_seq[in.local_edge] = seq;
    }
    for (const auto& [edge, count] : seen_this_round) {
      EXPECT_EQ(count, 1) << "edge capacity violated at node " << ctx.node();
    }
    if (static_cast<int>(ctx.round()) < chatter_rounds_) {
      const std::uint32_t deg = ctx.degree();
      for (std::uint32_t e = 0; e < deg; ++e) {
        if (s.rng.bernoulli(0.6)) {
          ctx.send(e, Message{ctx.node(), ++s.send_seq});
          ++s.sent;
        }
      }
      ctx.wake();
    }
  }

  std::uint64_t sent() const {
    std::uint64_t total = 0;
    for (const NodeState& s : nodes_) total += s.sent;
    return total;
  }
  std::uint64_t delivered() const {
    std::uint64_t total = 0;
    for (const NodeState& s : nodes_) total += s.delivered;
    return total;
  }

 private:
  struct NodeState {
    Rng rng{0};
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    Word send_seq = 0;  // per-sender sequence: FIFO audit stays per-edge
    std::vector<Word> last_seq;
  };
  std::vector<NodeState> nodes_;
  int chatter_rounds_;
};

TEST(SimFuzz, InvariantsHoldAcrossWorkerThreadCounts) {
  // The model invariants (conservation, capacity, FIFO, canonical inbox
  // order) must hold on the threaded stepping/delivery paths too, and the
  // aggregate stats must be byte-identical to the serial run. 400 nodes
  // keeps the active set above the parallelism threshold.
  for (const std::uint64_t seed : {11u, 12u}) {
    const Graph g = erdos_renyi(400, 0.02, {1, 5}, seed);
    SimStats reference;
    for (const unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      ThreadedFuzzProtocol p(g.num_nodes(), seed * 31 + 7, 12);
      SimConfig cfg;
      cfg.threads = threads;
      Simulator sim(g, p, cfg);
      const SimStats stats = sim.run();
      EXPECT_FALSE(stats.hit_round_limit);
      EXPECT_EQ(p.sent(), p.delivered());
      EXPECT_EQ(p.sent(), stats.messages);
      if (threads == 1) {
        reference = stats;
      } else {
        EXPECT_EQ(stats.rounds, reference.rounds);
        EXPECT_EQ(stats.messages, reference.messages);
        EXPECT_EQ(stats.words, reference.words);
        EXPECT_EQ(stats.node_steps, reference.node_steps);
        EXPECT_EQ(stats.max_outbox, reference.max_outbox);
      }
    }
  }
}

// Chatter protocol for fault runs: node-owned counters only, and no
// FIFO/capacity/ordering asserts — a FaultPlan legitimately drops,
// duplicates, and reorders, so only conservation-style aggregates and
// cross-thread determinism are checkable.
class FaultChatterProtocol : public Protocol {
 public:
  FaultChatterProtocol(NodeId n, std::uint64_t seed, int rounds_of_chatter)
      : nodes_(n), chatter_rounds_(rounds_of_chatter) {
    for (NodeId u = 0; u < n; ++u) {
      nodes_[u].rng = Rng(seed ^ (u * 0x9e37ULL));
    }
  }

  void on_start(NodeCtx& ctx) override { ctx.wake(); }

  void on_round(NodeCtx& ctx) override {
    NodeState& s = nodes_[ctx.node()];
    s.delivered += ctx.inbox().size();
    for (const Inbound& in : ctx.inbox()) s.payload_sum += in.msg.at(1);
    if (static_cast<int>(ctx.round()) < chatter_rounds_) {
      for (std::uint32_t e = 0; e < ctx.degree(); ++e) {
        if (s.rng.bernoulli(0.6)) {
          ctx.send(e, Message{ctx.node(), ++s.send_seq});
          ++s.sent;
        }
      }
      ctx.wake();
    }
  }

  void on_crash(NodeId node) override { ++nodes_[node].crashes; }

  std::uint64_t sent() const { return sum(&NodeState::sent); }
  std::uint64_t delivered() const { return sum(&NodeState::delivered); }
  std::uint64_t payload_sum() const { return sum(&NodeState::payload_sum); }
  std::uint64_t crashes() const { return sum(&NodeState::crashes); }

 private:
  struct NodeState {
    Rng rng{0};
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t payload_sum = 0;  // order-independent content fingerprint
    std::uint64_t crashes = 0;
    Word send_seq = 0;
  };
  std::uint64_t sum(std::uint64_t NodeState::* field) const {
    std::uint64_t total = 0;
    for (const NodeState& s : nodes_) total += s.*field;
    return total;
  }
  std::vector<NodeState> nodes_;
  int chatter_rounds_;
};

TEST(SimFuzz, FaultPlanRunsIdenticalAcrossThreadCounts) {
  // Randomized fault schedules (drops, duplicates, reorders, link-down
  // windows, crash/restarts) must replay byte-identically from the seed
  // regardless of SimConfig::threads: same stats (including the fault
  // counters), same per-node delivery counts, same delivered content.
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const Graph g = erdos_renyi(300, 0.03, {1, 5}, seed);
    FaultConfig fc;
    fc.drop_rate = 0.05;
    fc.duplicate_rate = 0.03;
    fc.reorder_rate = 0.1;
    fc.node_crashes = 2;
    fc.crash_horizon = 30;
    fc.crash_downtime = 8;
    fc.link_faults = 3;
    fc.link_fault_horizon = 30;
    fc.link_down_rounds = 6;
    fc.seed = seed * 977 + 5;
    const FaultPlan plan(g, fc);
    SimStats reference;
    std::uint64_t ref_delivered = 0;
    std::uint64_t ref_payload = 0;
    for (const unsigned threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      FaultChatterProtocol p(g.num_nodes(), seed * 31 + 7, 12);
      SimConfig cfg;
      cfg.threads = threads;
      cfg.faults = &plan;
      Simulator sim(g, p, cfg);
      const SimStats stats = sim.run();
      EXPECT_FALSE(stats.hit_round_limit);
      EXPECT_EQ(p.crashes(), 2u);
      if (threads == 1) {
        reference = stats;
        ref_delivered = p.delivered();
        ref_payload = p.payload_sum();
        // The schedule must actually have exercised the fault paths.
        EXPECT_GT(stats.dropped, 0u);
        EXPECT_GT(stats.duplicated, 0u);
        EXPECT_LT(p.delivered(), p.sent() + stats.duplicated);
      } else {
        EXPECT_EQ(stats.rounds, reference.rounds);
        EXPECT_EQ(stats.messages, reference.messages);
        EXPECT_EQ(stats.words, reference.words);
        EXPECT_EQ(stats.node_steps, reference.node_steps);
        EXPECT_EQ(stats.max_outbox, reference.max_outbox);
        EXPECT_EQ(stats.dropped, reference.dropped);
        EXPECT_EQ(stats.duplicated, reference.duplicated);
        EXPECT_EQ(p.delivered(), ref_delivered);
        EXPECT_EQ(p.payload_sum(), ref_payload);
      }
    }
  }
}

TEST(SimFuzz, FaultTolerantTzLabelsIdenticalAcrossThreadCounts) {
  // The whole point of the reliable layer: under a lossy, crashy schedule
  // the distributed TZ build must still converge to byte-identical labels
  // — equal to the centralized ground truth — at every thread count.
  const Graph g = erdos_renyi(100, 0.06, {1, 5}, 31);
  const std::uint32_t k = 2;
  Hierarchy h = Hierarchy::sample(g.num_nodes(), k, 33);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), k, 33 + bump++);
  }
  const LabelArena central = build_tz_centralized(g, h);
  FaultConfig fc;
  fc.drop_rate = 0.03;
  fc.duplicate_rate = 0.02;
  fc.reorder_rate = 0.05;
  fc.node_crashes = 2;
  fc.crash_horizon = 40;
  fc.crash_downtime = 10;
  fc.seed = 0xfa017ed;
  const FaultPlan plan(g, fc);
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SimConfig cfg;
    cfg.threads = threads;
    cfg.faults = &plan;
    TzFaultTolerance ft;
    ft.enabled = true;
    ft.rto = 8;
    const auto result =
        build_tz_distributed(g, h, TerminationMode::kOracle, cfg, false, 0, ft);
    ASSERT_TRUE(result.completed);
    EXPECT_GT(result.retransmits, 0u);
    ASSERT_EQ(result.labels.num_nodes(), central.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_TRUE(result.labels.view(u) == central.view(u)) << "node " << u;
    }
  }
}

TEST(EchoEdgeCases, SingleNodeGraph) {
  // A one-node network: the node elects itself, the BFS "tree" is just
  // the root, and the echo-terminated TZ build completes every phase with
  // zero network traffic.
  const Graph g = Graph::from_edges(1, {});
  const BfsTreeRun run = build_bfs_tree(g);
  EXPECT_EQ(run.tree.root, 0u);
  ASSERT_EQ(run.tree.roots.size(), 1u);
  EXPECT_TRUE(run.tree.is_root(0));
  EXPECT_EQ(run.tree.depth(), 0u);
  EXPECT_EQ(run.stats.messages, 0u);

  const Hierarchy h = Hierarchy::sample(1, 2, 3);
  const auto central = build_tz_centralized(g, h);
  const auto echo = build_tz_distributed(g, h, TerminationMode::kEcho);
  ASSERT_EQ(echo.labels.num_nodes(), 1u);
  EXPECT_TRUE(echo.labels.view(0) == central.view(0));
  EXPECT_EQ(echo.stats.messages, 0u);
}

TEST(EchoEdgeCases, IsolatedVerticesAndMultipleComponents) {
  // 0-1-2 path, 3-4 edge, 5 isolated: flood-max elects the max id of each
  // component, so the BFS forest has roots {2, 4, 5}.
  const Graph g = Graph::from_edges(
      6, {Edge{0, 1, 2}, Edge{1, 2, 3}, Edge{3, 4, 1}});
  const BfsTreeRun run = build_bfs_tree(g);
  const BfsTree& t = run.tree;
  ASSERT_EQ(t.roots, (std::vector<NodeId>{2, 4, 5}));
  EXPECT_EQ(t.root, 2u);
  EXPECT_TRUE(t.is_root(2) && t.is_root(4) && t.is_root(5));
  EXPECT_EQ(t.parent[1], 2u);
  EXPECT_EQ(t.parent[0], 1u);
  EXPECT_EQ(t.parent[3], 4u);
  EXPECT_EQ(t.hops[0], 2u);
  EXPECT_EQ(t.hops[5], 0u);
  EXPECT_TRUE(t.child_edges[5].empty());

  // Echo-terminated TZ on the same forest matches the centralized build;
  // the isolated vertex's label covers only itself.
  const Hierarchy h = Hierarchy::sample(6, 2, 9);
  const auto central = build_tz_centralized(g, h);
  const auto echo = build_tz_distributed(g, h, TerminationMode::kEcho);
  ASSERT_EQ(echo.labels.num_nodes(), 6u);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_TRUE(echo.labels.view(u) == central.view(u)) << "node " << u;
  }
}

TEST(SimFuzz, NodeStepsOnlyForActiveNodes) {
  // A silent network must cost zero node steps after round 0.
  class Silent : public Protocol {
   public:
    void on_start(NodeCtx&) override {}
    void on_round(NodeCtx&) override { FAIL() << "no node should step"; }
  };
  const Graph g = ring(100, {1, 1}, 0);
  Silent p;
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.rounds, 1u);        // the on_start sweep consumes a round
  EXPECT_EQ(stats.node_steps, 100u);  // and nothing steps afterwards
}

}  // namespace
}  // namespace dsketch
