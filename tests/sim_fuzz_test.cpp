// Simulator invariant fuzzing: a protocol that sends random traffic while
// the test audits the model guarantees from the receiving side —
//   - conservation: every sent message is delivered exactly once;
//   - capacity: in synchronous mode at most one message arrives per edge
//     per direction per round;
//   - FIFO per link in synchronous mode;
//   - determinism across runs.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "congest/sim.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace dsketch {
namespace {

class FuzzProtocol : public Protocol {
 public:
  FuzzProtocol(NodeId n, std::uint64_t seed, int rounds_of_chatter)
      : rngs_(), chatter_rounds_(rounds_of_chatter) {
    rngs_.reserve(n);
    for (NodeId u = 0; u < n; ++u) rngs_.emplace_back(seed ^ (u * 0x9e37ULL));
    last_seq_per_edge_.resize(n);
  }

  void on_start(NodeCtx& ctx) override {
    ctx.wake();
  }

  void on_round(NodeCtx& ctx) override {
    const NodeId u = ctx.node();
    auto& rng = rngs_[u];
    // Audit inbound: per-round per-edge multiplicity and FIFO sequence.
    std::map<std::uint32_t, int> seen_this_round;
    for (const Inbound& in : ctx.inbox()) {
      ++delivered_;
      ++seen_this_round[in.local_edge];
      const Word seq = in.msg.at(1);
      auto& last = last_seq_per_edge_[u];
      if (last.size() <= in.local_edge) last.resize(ctx.degree(), 0);
      EXPECT_GT(seq, last[in.local_edge]) << "FIFO violated";
      last[in.local_edge] = seq;
    }
    for (const auto& [edge, count] : seen_this_round) {
      EXPECT_EQ(count, 1) << "edge capacity violated at node " << u;
    }
    // Random chatter for a bounded number of rounds.
    if (static_cast<int>(ctx.round()) < chatter_rounds_) {
      const std::uint32_t deg = ctx.degree();
      for (std::uint32_t e = 0; e < deg; ++e) {
        if (rng.bernoulli(0.6)) {
          ctx.send(e, Message{u, ++send_seq_});
          ++sent_;
        }
      }
      ctx.wake();
    }
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }

 private:
  std::vector<Rng> rngs_;
  int chatter_rounds_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  Word send_seq_ = 0;
  // last sequence number seen per (node, local edge)
  std::vector<std::vector<Word>> last_seq_per_edge_;
};

class SimFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SimFuzz, ConservationCapacityFifo) {
  const auto [seed, chatter] = GetParam();
  const Graph g = erdos_renyi(60, 0.08, {1, 5}, seed);
  FuzzProtocol p(g.num_nodes(), seed * 17 + 1, chatter);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_FALSE(stats.hit_round_limit);
  EXPECT_EQ(p.sent(), p.delivered());
  EXPECT_EQ(p.sent(), stats.messages);
}

INSTANTIATE_TEST_SUITE_P(Grid, SimFuzz,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(3, 10, 25)));

TEST(SimFuzz, AsyncConservesMessages) {
  const Graph g = erdos_renyi(50, 0.1, {1, 5}, 9);
  // Async delivery may reorder (FIFO audit disabled by construction: each
  // sender uses a global sequence so cross-edge ordering doesn't apply).
  class AsyncCounter : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() % 3 == 0) {
        for (std::uint32_t e = 0; e < ctx.degree(); ++e) {
          for (int i = 0; i < 4; ++i) {
            ctx.send(e, Message{static_cast<Word>(i)});
            ++sent_;
          }
        }
      }
    }
    void on_round(NodeCtx& ctx) override {
      delivered_ += ctx.inbox().size();
    }
    std::uint64_t sent_ = 0;
    std::uint64_t delivered_ = 0;
  };
  AsyncCounter p;
  SimConfig cfg;
  cfg.async_max_delay = 7;
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  EXPECT_EQ(p.sent_, p.delivered_);
  EXPECT_EQ(stats.messages, p.sent_);
}

TEST(SimFuzz, NodeStepsOnlyForActiveNodes) {
  // A silent network must cost zero node steps after round 0.
  class Silent : public Protocol {
   public:
    void on_start(NodeCtx&) override {}
    void on_round(NodeCtx&) override { FAIL() << "no node should step"; }
  };
  const Graph g = ring(100, {1, 1}, 0);
  Silent p;
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.rounds, 1u);        // the on_start sweep consumes a round
  EXPECT_EQ(stats.node_steps, 100u);  // and nothing steps afterwards
}

}  // namespace
}  // namespace dsketch
