// The v3 (delta+varint, page-aligned) store format and its two serving
// paths: SketchStore::read decoding to heap arenas and MmapSketchStore
// querying the mapped bytes in place. The contract under test is
// byte-identical answers between the two, for every scheme, plus typed
// rejection (or safe kInfDist answers) for every corruption the fuzz
// loops can produce. The varint decoder runs under ASan in CI, so the
// corruption loops double as out-of-bounds probes.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "serve/label_codec.hpp"
#include "serve/mmap_store.hpp"
#include "serve/sketch_store.hpp"
#include "serve/store_format.hpp"

namespace dsketch {
namespace {

// ---------------------------------------------------------------------------
// label_codec primitives

TEST(Varint, RoundTripsBoundaryValues) {
  for (const std::uint64_t x :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16383}, std::uint64_t{16384},
        std::uint64_t{1} << 32, static_cast<std::uint64_t>(-2),
        static_cast<std::uint64_t>(-1)}) {
    std::vector<std::uint8_t> bytes;
    put_varint(bytes, x);
    VarintReader r{bytes.data(), bytes.data() + bytes.size()};
    EXPECT_EQ(r.get(), x);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, TruncationFailsCleanly) {
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, std::uint64_t{1} << 40);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    VarintReader r{bytes.data(), bytes.data() + keep};
    r.get();
    EXPECT_FALSE(r.ok) << "kept " << keep << " of " << bytes.size();
  }
}

TEST(Varint, OverflowPastSixtyFourBitsRejected) {
  // Ten continuation bytes encode up to 70 bits; bit 64 set must fail.
  std::vector<std::uint8_t> bytes(9, 0x80);
  bytes.push_back(0x02);  // would be bit 64
  VarintReader r{bytes.data(), bytes.data() + bytes.size()};
  r.get();
  EXPECT_FALSE(r.ok);
}

TEST(Varint, DoneRejectsTrailingBytes) {
  std::vector<std::uint8_t> bytes;
  put_varint(bytes, 7);
  bytes.push_back(0);
  VarintReader r{bytes.data(), bytes.data() + bytes.size()};
  EXPECT_EQ(r.get(), 7u);
  EXPECT_FALSE(r.done());
}

TEST(ZigZag, RoundTripsSignedDeltas) {
  for (const std::int64_t d : {std::int64_t{0}, std::int64_t{1},
                               std::int64_t{-1}, std::int64_t{1} << 40,
                               -(std::int64_t{1} << 40)}) {
    EXPECT_EQ(static_cast<std::int64_t>(
                  unzigzag64(zigzag64(static_cast<std::uint64_t>(d)))),
              d);
  }
}

// ---------------------------------------------------------------------------
// record coding: synthetic tz record with the wrinkles the coder must
// survive — invalid pivots, duplicate bunch nodes, non-monotone pivot
// distances (the post-repair shape zigzag deltas exist for).

std::vector<std::uint32_t> synthetic_tz_record() {
  std::vector<std::uint32_t> rec;
  const auto push_dist = [&](Dist d) {
    rec.push_back(static_cast<std::uint32_t>(d & 0xffffffffu));
    rec.push_back(static_cast<std::uint32_t>(d >> 32));
  };
  rec.push_back(3);  // levels
  rec.push_back(4);  // bunch count
  rec.push_back(7);                 // pivot 0
  push_dist(0);
  rec.push_back(kInvalidNode);      // pivot 1: invalid
  push_dist(kInfDist);
  rec.push_back(2);                 // pivot 2: distance *smaller* than p0's
  push_dist(5);
  // bunch sorted by (node, level); node 9 duplicated across levels.
  rec.push_back(4); rec.push_back(0); push_dist(11);
  rec.push_back(9); rec.push_back(0); push_dist(3);
  rec.push_back(9); rec.push_back(2); push_dist(3);
  rec.push_back(12); rec.push_back(1); push_dist((Dist{1} << 33) + 5);
  return rec;
}

TEST(RecordCodec, TzRoundTripsBitExactly) {
  const std::vector<std::uint32_t> rec = synthetic_tz_record();
  std::vector<std::uint8_t> bytes;
  encode_record_v3(Scheme::kThorupZwick, rec.data(), rec.size(), 0, bytes);
  std::vector<std::uint32_t> back;
  ASSERT_TRUE(decode_record_v3(Scheme::kThorupZwick, bytes.data(),
                               bytes.data() + bytes.size(), 0, back));
  EXPECT_EQ(back, rec);
  // The varint coding must actually compress vs the 4-bytes-per-word
  // fixed layout.
  EXPECT_LT(bytes.size(), rec.size() * 4);
}

TEST(RecordCodec, DecodeRejectsEveryTruncation) {
  const std::vector<std::uint32_t> rec = synthetic_tz_record();
  std::vector<std::uint8_t> bytes;
  encode_record_v3(Scheme::kThorupZwick, rec.data(), rec.size(), 0, bytes);
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<std::uint32_t> back;
    EXPECT_FALSE(decode_record_v3(Scheme::kThorupZwick, bytes.data(),
                                  bytes.data() + keep, 0, back))
        << "kept " << keep << " of " << bytes.size();
    EXPECT_TRUE(back.empty());
  }
}

TEST(RecordCodec, DecodeSurvivesRandomBytes) {
  // Arbitrary bytes must either decode to *some* structurally valid
  // record or fail — never crash or read out of bounds (ASan-checked).
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  const auto next = [&] {
    state ^= state << 13; state ^= state >> 7; state ^= state << 17;
    return static_cast<std::uint8_t>(state);
  };
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(trial % 37);
    for (auto& b : bytes) b = next();
    std::vector<std::uint32_t> back;
    decode_record_v3(Scheme::kThorupZwick, bytes.data(),
                     bytes.data() + bytes.size(), 0, back);
  }
}

// ---------------------------------------------------------------------------
// the file format end to end

BuildConfig config_for(Scheme scheme) {
  BuildConfig cfg;
  cfg.scheme = scheme;
  cfg.k = 2;
  cfg.epsilon = 0.25;
  return cfg;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

class StoreV3Schemes : public ::testing::TestWithParam<Scheme> {
 protected:
  StoreV3Schemes()
      : graph_(erdos_renyi(80, 0.08, {1, 9}, 17)),
        engine_(graph_, config_for(GetParam())),
        store_(SketchStore::from_engine(engine_)) {}

  Graph graph_;
  SketchEngine engine_;
  SketchStore store_;
};

TEST_P(StoreV3Schemes, V3RoundTripAnswersIdentically) {
  std::stringstream ss;
  store_.write(ss, StoreFormat::kV3);
  const SketchStore back = SketchStore::read(ss);
  EXPECT_EQ(back.scheme(), store_.scheme());
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    for (NodeId v = u; v < graph_.num_nodes(); v += 3) {
      EXPECT_EQ(back.query(u, v), store_.query(u, v));
    }
  }
}

TEST_P(StoreV3Schemes, V2V3V2WriteIsByteIdentical) {
  // The coding is bijective on every structurally valid record, so a
  // store surviving a v3 round trip must re-emit the exact v2 bytes.
  std::stringstream v2a, v3, v2b;
  store_.write(v2a, StoreFormat::kV2);
  store_.write(v3, StoreFormat::kV3);
  SketchStore::read(v3).write(v2b, StoreFormat::kV2);
  EXPECT_EQ(v2a.str(), v2b.str());
}

TEST_P(StoreV3Schemes, MmapAnswersMatchHeapByteForByte) {
  const std::string path = temp_path("dsketch_v3_mmap.bin");
  store_.save_file(path, StoreFormat::kV3);
  const SketchStore heap = SketchStore::load_file(path);
  const auto mapped = MmapSketchStore::open(path, /*verify_checksum=*/true);
  EXPECT_EQ(mapped->scheme(), heap.scheme());
  EXPECT_EQ(mapped->num_nodes(), heap.num_nodes());
  EXPECT_EQ(mapped->num_segments(), heap.num_segments());
  EXPECT_EQ(mapped->k(), heap.k());
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    EXPECT_EQ(mapped->size_words(u), heap.size_words(u)) << "node " << u;
    EXPECT_EQ(mapped->encoded_bytes_for(u), heap.encoded_record_bytes(u))
        << "node " << u;
    for (NodeId v = u; v < graph_.num_nodes(); v += 3) {
      EXPECT_EQ(mapped->query(u, v), heap.query(u, v))
          << "pair " << u << "," << v;
    }
  }
}

TEST_P(StoreV3Schemes, MmapRejectsLegacyFormats) {
  const std::string path = temp_path("dsketch_v2_for_mmap.bin");
  store_.save_file(path, StoreFormat::kV2);
  try {
    MmapSketchStore::open(path);
    FAIL() << "v2 file must not mmap-open";
  } catch (const StoreCorruptionError& e) {
    EXPECT_EQ(e.kind(), StoreError::kUnsupportedVersion);
  }
}

TEST_P(StoreV3Schemes, LegacyV2StillLoadsThroughTheHeapPath) {
  const std::string path = temp_path("dsketch_v2_compat.bin");
  store_.save_file(path, StoreFormat::kV2);
  const SketchStore back = SketchStore::load_file(path);
  for (NodeId u = 0; u < graph_.num_nodes(); u += 2) {
    for (NodeId v = u; v < graph_.num_nodes(); v += 5) {
      EXPECT_EQ(back.query(u, v), store_.query(u, v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, StoreV3Schemes,
                         ::testing::Values(Scheme::kThorupZwick,
                                           Scheme::kSlack, Scheme::kCdg,
                                           Scheme::kGraceful));

// ---------------------------------------------------------------------------
// corruption: the v3 byte-level map needed to aim at specific sections

class StoreV3Corruption : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = erdos_renyi(40, 0.1, {1, 5}, 3);
    BuildConfig cfg;
    cfg.scheme = Scheme::kThorupZwick;
    cfg.k = 2;
    engine_ = std::make_unique<SketchEngine>(graph_, cfg);
    store_ = SketchStore::from_engine(*engine_);
    n_ = store_.num_nodes();
    path_ = temp_path("dsketch_v3_corruption.bin");
    store_.save_file(path_, StoreFormat::kV3);
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    // v3 segment framing for a meta-free tz store: u64 meta_count,
    // u64 blob_bytes, pad to the next 4096 file boundary, the offset
    // table (n+1 u64 byte offsets), pad, blob.
    ASSERT_EQ(u64_at(64), 0u) << "tz segment has no meta";
    blob_bytes_ = u64_at(72);
    offsets_pos_ = 4096;
    blob_pos_ = offsets_pos_ + 8 * (n_ + 1);
    blob_pos_ += (4096 - blob_pos_ % 4096) % 4096;
    ASSERT_EQ(offset_of(0), 0u);
    ASSERT_EQ(offset_of(n_), blob_bytes_);
  }

  std::uint64_t u64_at(std::size_t pos) const {
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(bytes_[pos + i]))
           << (8 * i);
    }
    return x;
  }

  std::uint64_t offset_of(NodeId u) const {
    return u64_at(offsets_pos_ + 8 * u);
  }

  void write_file(const std::string& data) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  Graph graph_;
  std::unique_ptr<SketchEngine> engine_;
  SketchStore store_;
  std::string path_;
  std::string bytes_;
  NodeId n_ = 0;
  std::uint64_t blob_bytes_ = 0;
  std::size_t offsets_pos_ = 0;
  std::size_t blob_pos_ = 0;
};

TEST_F(StoreV3Corruption, HeapLoadFuzzTruncationAndBitFlipsAlwaysTyped) {
  // Same contract the v2 fuzz enforces: both checksums cover every byte,
  // so any flip or cut surfaces as a typed error on the strict path.
  for (std::size_t keep = 0; keep < bytes_.size(); keep += 101) {
    std::stringstream ss(bytes_.substr(0, keep));
    EXPECT_THROW(SketchStore::read(ss), StoreCorruptionError)
        << "truncated to " << keep;
  }
  for (std::size_t pos = 0; pos < bytes_.size(); pos += 17) {
    std::string mut = bytes_;
    mut[pos] = static_cast<char>(mut[pos] ^ 0x20);
    std::stringstream ss(mut);
    EXPECT_THROW(SketchStore::read(ss), StoreCorruptionError)
        << "flip at " << pos;
  }
}

TEST_F(StoreV3Corruption, MmapOpenRejectsTruncation) {
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{17}, std::size_t{63}, std::size_t{64},
        offsets_pos_ - 1, offsets_pos_ + 8 * (n_ / 2), blob_pos_ - 1,
        bytes_.size() - 1}) {
    write_file(bytes_.substr(0, keep));
    EXPECT_THROW(MmapSketchStore::open(path_), StoreCorruptionError)
        << "truncated to " << keep;
  }
}

TEST_F(StoreV3Corruption, MmapOpenRejectsBrokenOffsetTable) {
  // Swap two interior offsets: the table is no longer monotone, which
  // the eager framing walk must catch before any query runs.
  std::string mut = bytes_;
  for (int i = 0; i < 8; ++i) {
    std::swap(mut[offsets_pos_ + 8 * (n_ / 2) + i],
              mut[offsets_pos_ + 8 * (n_ / 2 + 1) + i]);
  }
  write_file(mut);
  try {
    MmapSketchStore::open(path_);
    FAIL() << "non-monotone offsets must not open";
  } catch (const StoreCorruptionError& e) {
    EXPECT_EQ(e.kind(), StoreError::kStructure);
  }
}

TEST_F(StoreV3Corruption, MmapOffsetAndBlobFlipsNeverReadOutOfBounds) {
  // Single-byte flips across the offset table and the blob. Each one
  // either fails the eager framing walk (typed throw) or opens and then
  // answers every probe without crashing — corrupt records answer
  // kInfDist, and ASan guards the decoder against any stray read.
  for (std::size_t pos = offsets_pos_; pos < bytes_.size(); pos += 131) {
    std::string mut = bytes_;
    mut[pos] = static_cast<char>(mut[pos] ^ 0x11);
    write_file(mut);
    try {
      const auto mapped = MmapSketchStore::open(path_);
      for (NodeId u = 0; u < n_; u += 7) {
        for (NodeId v = 0; v < n_; v += 5) {
          (void)mapped->query(u, v);
        }
      }
    } catch (const StoreCorruptionError&) {
      // Typed rejection is equally acceptable.
    }
  }
}

TEST_F(StoreV3Corruption, RecoverQuarantinesTheDamagedRecord) {
  // Stomp one node's encoded record with continuation-bit garbage: the
  // strict load fails the checksum, recovery quarantines exactly that
  // node and keeps everyone else answering bit-identically.
  const NodeId victim = 5;
  const std::size_t begin = blob_pos_ + offset_of(victim);
  const std::size_t end = blob_pos_ + offset_of(victim + 1);
  ASSERT_LT(begin, end);
  std::string mut = bytes_;
  for (std::size_t i = begin; i < end; ++i) {
    mut[i] = static_cast<char>(0xff);
  }
  write_file(mut);

  EXPECT_THROW(SketchStore::load_file(path_), StoreCorruptionError);
  const SketchStore::Recovery rec = SketchStore::recover_file(path_);
  EXPECT_FALSE(rec.checksum_ok);
  ASSERT_EQ(rec.quarantined, std::vector<NodeId>{victim});
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v = u; v < n_; v += 3) {
      if (u == victim || v == victim) continue;
      EXPECT_EQ(rec.store.query(u, v), store_.query(u, v));
    }
  }
  EXPECT_EQ(rec.store.query(victim, victim), 0u);
  for (NodeId v = 0; v < n_; ++v) {
    if (v != victim) EXPECT_EQ(rec.store.query(victim, v), kInfDist);
  }
}

TEST_F(StoreV3Corruption, RecoverQuarantinesTheTruncatedTail) {
  // Cut inside the second-to-last record: the nodes past the cut are
  // lost, the intact prefix serves.
  const std::size_t cut = blob_pos_ + offset_of(n_ - 2) + 1;
  write_file(bytes_.substr(0, cut));

  EXPECT_THROW(SketchStore::load_file(path_), StoreCorruptionError);
  const SketchStore::Recovery rec = SketchStore::recover_file(path_);
  EXPECT_FALSE(rec.checksum_ok);
  ASSERT_EQ(rec.quarantined, (std::vector<NodeId>{n_ - 2, n_ - 1}));
  for (NodeId u = 0; u + 2 < n_; u += 2) {
    for (NodeId v = u; v + 2 < n_; v += 3) {
      EXPECT_EQ(rec.store.query(u, v), store_.query(u, v));
    }
  }
}

TEST_F(StoreV3Corruption, DecodeRecordMatchesHeapWordModel) {
  // The test hook: decoding a record off the mapping must yield words
  // whose tz size formula agrees with the heap store's accounting.
  const auto mapped = MmapSketchStore::open(path_);
  for (NodeId u = 0; u < n_; ++u) {
    const std::vector<std::uint32_t> words = mapped->decode_record(0, u);
    ASSERT_GE(words.size(), 2u) << "node " << u;
    const std::uint64_t levels = words[0];
    const std::uint64_t count = words[1];
    EXPECT_EQ(words.size(), 2 + 3 * levels + 4 * count) << "node " << u;
    EXPECT_EQ(store_.size_words(u), words.size()) << "node " << u;
  }
}

}  // namespace
}  // namespace dsketch
