#include <gtest/gtest.h>

#include <numeric>

#include "congest/aggregation.hpp"
#include "graph/generators.hpp"

namespace dsketch {
namespace {

std::vector<Word> iota_values(NodeId n) {
  std::vector<Word> v(n);
  std::iota(v.begin(), v.end(), Word{1});
  return v;
}

TEST(Aggregation, SumOverRandomGraph) {
  const Graph g = erdos_renyi(120, 0.05, {1, 5}, 3);
  const auto values = iota_values(g.num_nodes());
  const auto r = aggregate(g, values, AggregateOp::kSum);
  EXPECT_EQ(r.value, Word{120} * 121 / 2);
}

TEST(Aggregation, MinAndMax) {
  const Graph g = grid2d(8, 8, {1, 1}, 0);
  std::vector<Word> values(g.num_nodes(), 50);
  values[17] = 3;
  values[40] = 99;
  EXPECT_EQ(aggregate(g, values, AggregateOp::kMin).value, 3u);
  EXPECT_EQ(aggregate(g, values, AggregateOp::kMax).value, 99u);
}

TEST(Aggregation, CountComputesN) {
  // How a real deployment learns "n is common knowledge" (§2.2).
  const Graph g = random_tree(77, {1, 3}, 5);
  const auto r = aggregate(g, {}, AggregateOp::kCount);
  EXPECT_EQ(r.value, 77u);
}

TEST(Aggregation, RoundsScaleWithDepthNotN) {
  const Graph g = star(400, {1, 1}, 0);  // depth 2 from any leaf root
  const auto r = aggregate(g, iota_values(400), AggregateOp::kSum);
  EXPECT_LT(r.stats.rounds, 40u);
}

TEST(Aggregation, PathWorstCase) {
  const Graph g = path(100, {1, 1}, 0);
  const auto r = aggregate(g, iota_values(100), AggregateOp::kSum);
  EXPECT_EQ(r.value, Word{100} * 101 / 2);
  // ~2 flood sweeps (election) + up + down over depth ~n.
  EXPECT_LE(r.stats.rounds, 6u * 100);
}

TEST(Aggregation, WorksUnderAsynchrony) {
  const Graph g = erdos_renyi(80, 0.07, {1, 5}, 9);
  SimConfig cfg;
  cfg.async_max_delay = 4;
  const auto r = aggregate(g, iota_values(80), AggregateOp::kSum, cfg);
  EXPECT_EQ(r.value, Word{80} * 81 / 2);
}

TEST(Aggregation, SingleEdgeGraph) {
  const Graph g = path(2, {1, 1}, 0);
  const auto r = aggregate(g, {5, 9}, AggregateOp::kSum);
  EXPECT_EQ(r.value, 14u);
}

}  // namespace
}  // namespace dsketch
