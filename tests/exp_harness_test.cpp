#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exp/corpus_cache.hpp"
#include "exp/manifest.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "graph/graph_io.hpp"

namespace dsketch::exp {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
fs::path scratch(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / ("dsketch_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(JsonLines, ParsesFlatObjects) {
  JsonObject object;
  ASSERT_TRUE(parse_json_line(
      R"({"experiment":"e1","table":"t","n":256,"x":1.5,"ok":true})",
      object));
  ASSERT_EQ(object.size(), 5u);
  EXPECT_EQ(json_value(object, "experiment"), "e1");
  EXPECT_EQ(json_value(object, "n"), "256");
  EXPECT_EQ(json_value(object, "x"), "1.5");
  EXPECT_EQ(json_value(object, "ok"), "true");
  EXPECT_EQ(json_value(object, "missing"), "");

  ASSERT_TRUE(parse_json_line(R"({"s":"a \"quoted\" \\ value"})", object));
  EXPECT_EQ(json_value(object, "s"), "a \"quoted\" \\ value");

  ASSERT_TRUE(parse_json_line("{}", object));
  EXPECT_TRUE(object.empty());
}

TEST(JsonLines, RejectsMalformedInput) {
  JsonObject object;
  EXPECT_FALSE(parse_json_line("", object));
  EXPECT_FALSE(parse_json_line("not json", object));
  EXPECT_FALSE(parse_json_line(R"({"k":1)", object));
  EXPECT_FALSE(parse_json_line(R"({"k" 1})", object));
  EXPECT_FALSE(parse_json_line(R"({"k":"unterminated})", object));
}

TEST(CorpusCache, ContentAddressingReusesAndRegenerates) {
  const fs::path dir = scratch("corpus");
  GraphSpec spec;
  spec.name = "ring64";
  spec.params = {{"topology", "ring"}, {"n", "64"}};

  const std::string path = ensure_graph(spec, dir.string());
  ASSERT_TRUE(fs::exists(path));
  const Graph g = read_graph_file(path);
  EXPECT_EQ(g.num_nodes(), 64u);

  // Same spec: same path, and the cached file is reused as-is.
  const auto first_write = fs::last_write_time(path);
  EXPECT_EQ(ensure_graph(spec, dir.string()), path);
  EXPECT_EQ(fs::last_write_time(path), first_write);

  // Different parameters address a different file.
  GraphSpec bigger = spec;
  bigger.params[1].second = "128";
  const std::string other = ensure_graph(bigger, dir.string());
  EXPECT_NE(other, path);
  EXPECT_EQ(read_graph_file(other).num_nodes(), 128u);

  // A corrupted cache entry is detected and regenerated.
  { std::ofstream(path) << "garbage\n"; }
  EXPECT_EQ(ensure_graph(spec, dir.string()), path);
  EXPECT_EQ(read_graph_file(path).num_nodes(), 64u);
}

TEST(CorpusCache, GenerateGraphRejectsUnknownTopology) {
  FlagSet flags(std::vector<std::pair<std::string, std::string>>{
      {"topology", "mobius"}});
  EXPECT_THROW(generate_graph(flags), std::runtime_error);
}

Manifest tiny_manifest() {
  return parse_manifest(R"(
name = "tiny"
seed = 3

[corpus.ring64]
topology = "ring"
n = 64

[[cell]]
experiment = "e2"
nmax = 256
kmax = 2

[[cell]]
experiment = "e7"
graph = "ring64"
queries = 200
)");
}

TEST(Runner, RunsResumesAndForces) {
  const fs::path dir = scratch("runner");
  RunOptions opts;
  opts.out_dir = dir.string();
  opts.threads = 2;

  const RunSummary first = run_manifest(tiny_manifest(), opts);
  EXPECT_TRUE(first.ok());
  EXPECT_EQ(first.ran, 2u);
  EXPECT_EQ(first.skipped, 0u);
  for (const CellResult& cell : first.cells) {
    EXPECT_TRUE(cell_output_valid(cell.out_path, cell.id)) << cell.out_path;
  }

  // Second run resumes: everything is skipped.
  const RunSummary second = run_manifest(tiny_manifest(), opts);
  EXPECT_EQ(second.ran, 0u);
  EXPECT_EQ(second.skipped, 2u);

  // A truncated artifact is detected and re-run.
  { std::ofstream(first.cells[0].out_path) << "{\"status\":\"start\"}\n"; }
  const RunSummary third = run_manifest(tiny_manifest(), opts);
  EXPECT_EQ(third.ran, 1u);
  EXPECT_EQ(third.skipped, 1u);

  // --force reruns everything.
  opts.force = true;
  const RunSummary fourth = run_manifest(tiny_manifest(), opts);
  EXPECT_EQ(fourth.ran, 2u);
}

TEST(Runner, UnknownExperimentFailsFast) {
  const fs::path dir = scratch("runner_bad");
  Manifest m = parse_manifest(
      "name = \"bad\"\n[[cell]]\nexperiment = \"e99\"\n");
  RunOptions opts;
  opts.out_dir = dir.string();
  EXPECT_THROW(run_manifest(m, opts), std::runtime_error);
}

TEST(Runner, CellOutputValidRejectsBadArtifacts) {
  const fs::path dir = scratch("validate");
  EXPECT_FALSE(cell_output_valid((dir / "missing.jsonl").string(), "x"));
  const fs::path garbage = dir / "garbage.jsonl";
  { std::ofstream(garbage) << "not json at all\n"; }
  EXPECT_FALSE(cell_output_valid(garbage.string(), "x"));
  const fs::path wrong = dir / "wrong.jsonl";
  { std::ofstream(wrong) << "{\"cell\":\"other\",\"status\":\"ok\"}\n"; }
  EXPECT_FALSE(cell_output_valid(wrong.string(), "x"));
  const fs::path good = dir / "good.jsonl";
  { std::ofstream(good) << "{\"cell\":\"x\",\"status\":\"ok\"}\n"; }
  EXPECT_TRUE(cell_output_valid(good.string(), "x"));
}

TEST(Report, RendersTablesNotesAndCells) {
  const fs::path dir = scratch("report");
  RunOptions opts;
  opts.out_dir = dir.string();
  const RunSummary summary = run_manifest(tiny_manifest(), opts);
  ASSERT_TRUE(summary.ok());

  const std::string report = generate_report(dir.string(), "tiny");
  EXPECT_NE(report.find("# Experiment results — tiny"), std::string::npos);
  EXPECT_NE(report.find("## E2"), std::string::npos);
  EXPECT_NE(report.find("## E7"), std::string::npos);
  EXPECT_NE(report.find("### label_words"), std::string::npos);
  EXPECT_NE(report.find("### query_latency"), std::string::npos);
  EXPECT_NE(report.find("| n | k |"), std::string::npos);
  EXPECT_NE(report.find("> Expected shape"), std::string::npos);
  EXPECT_NE(report.find("cells:"), std::string::npos);

  // write_report creates parent directories and the file round-trips.
  const fs::path out = dir / "docs" / "RESULTS.md";
  write_report(dir.string(), "tiny", out.string());
  std::ifstream in(out);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, report);
}

TEST(Report, EmptyOutputDirectoryIsHandled) {
  const fs::path dir = scratch("report_empty");
  const std::string report = generate_report(dir.string(), "none");
  EXPECT_NE(report.find("No cell artifacts found"), std::string::npos);
}

}  // namespace
}  // namespace dsketch::exp
