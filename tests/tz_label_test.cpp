#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sketch/tz_label.hpp"

namespace dsketch {
namespace {

TEST(DistKey, LexicographicOrder) {
  EXPECT_TRUE((DistKey{1, 5} < DistKey{2, 0}));
  EXPECT_TRUE((DistKey{2, 0} < DistKey{2, 1}));
  EXPECT_FALSE((DistKey{2, 1} < DistKey{2, 1}));
  EXPECT_TRUE((DistKey{2, 1} == DistKey{2, 1}));
}

TEST(DistKey, DefaultIsInfinite) {
  const DistKey inf;
  EXPECT_TRUE((DistKey{kInfDist - 1, 0} < inf));
}

TEST(TzLabelBuilder, StoresPivotsAndBunch) {
  TzLabelBuilder l(3, 2);
  l.set_pivot(0, {0, 3});
  l.set_pivot(1, {7, 9});
  l.add_bunch_entry({9, 1, 7});
  l.add_bunch_entry({4, 0, 2});
  l.sort_bunch();
  const LabelView v = l.view();
  EXPECT_EQ(l.owner(), 3u);
  EXPECT_EQ(l.levels(), 2u);
  EXPECT_EQ(v.bunch_dist(9), 7u);
  EXPECT_EQ(v.bunch_dist(4), 2u);
  EXPECT_EQ(v.bunch_dist(5), kInfDist);
  EXPECT_TRUE(v.bunch_contains(4));
  EXPECT_FALSE(v.bunch_contains(5));
}

TEST(TzLabelBuilder, SizeWordsAccounting) {
  TzLabelBuilder l(0, 3);
  EXPECT_EQ(l.size_words(), 6u);  // 3 pivots x 2 words
  l.add_bunch_entry({1, 0, 5});
  EXPECT_EQ(l.size_words(), 8u);
}

TEST(TzLabelBuilder, SortBunchCanonicalizes) {
  TzLabelBuilder a(0, 2), b(0, 2);
  a.add_bunch_entry({5, 0, 9});
  a.add_bunch_entry({2, 1, 3});
  b.add_bunch_entry({2, 1, 3});
  b.add_bunch_entry({5, 0, 9});
  EXPECT_FALSE(a.sorted());
  a.sort_bunch();
  b.sort_bunch();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.view().bunch_dist(5), 9u);
}

TEST(TzLabelBuilder, InOrderInsertionStaysSorted) {
  TzLabelBuilder l(0, 2);
  l.add_bunch_entry({2, 0, 3});
  l.add_bunch_entry({2, 1, 3});  // same node, higher level: still in order
  l.add_bunch_entry({5, 0, 9});
  EXPECT_TRUE(l.sorted());
}

TEST(TzLabelBuilder, FromViewRoundTrips) {
  TzLabelBuilder l(7, 2);
  l.set_pivot(0, {0, 7});
  l.set_pivot(1, {4, 2});
  l.add_bunch_entry({3, 1, 6});
  l.add_bunch_entry({7, 0, 0});
  l.sort_bunch();
  const TzLabelBuilder copy = TzLabelBuilder::from_view(l.view());
  EXPECT_TRUE(l == copy);
}

TEST(LabelArena, FromBuildersPreservesLabels) {
  std::vector<TzLabelBuilder> builders;
  for (NodeId u = 0; u < 3; ++u) {
    TzLabelBuilder b(u, 2);
    b.set_pivot(0, {0, u});
    b.add_bunch_entry({u, 0, 0});
    if (u == 1) b.add_bunch_entry({0, 1, 4});
    builders.push_back(std::move(b));
  }
  std::vector<TzLabelBuilder> expect = builders;  // keep copies to compare
  const LabelArena arena = LabelArena::from_builders(std::move(builders));
  ASSERT_EQ(arena.num_nodes(), 3u);
  EXPECT_EQ(arena.k(), 2u);
  for (NodeId u = 0; u < 3; ++u) {
    expect[u].sort_bunch();
    EXPECT_TRUE(arena.view(u) == expect[u].view()) << "node " << u;
  }
  EXPECT_EQ(arena.total_entries(), 4u);
}

TEST(LabelArena, TightenHooksBumpGenerationAndKeepViewsValid) {
  std::vector<TzLabelBuilder> builders;
  TzLabelBuilder b(0, 1);
  b.set_pivot(0, {5, 0});
  b.add_bunch_entry({2, 0, 9});
  builders.push_back(std::move(b));
  LabelArena arena = LabelArena::from_builders(std::move(builders));
  const std::uint64_t g0 = arena.generation();
  const LabelView before = arena.view(0);
  arena.tighten_pivot(0, 0, 3);
  arena.tighten_bunch_dist(0, 0, 7);
  EXPECT_GT(arena.generation(), g0);
  // Tightening writes in place: the old view sees the new distances.
  EXPECT_EQ(before.pivot(0).dist, 3u);
  EXPECT_EQ(before.bunch_dist(2), 7u);
}

TEST(LabelArena, ReplaceGrowsSlice) {
  std::vector<TzLabelBuilder> builders;
  for (NodeId u = 0; u < 2; ++u) {
    TzLabelBuilder b(u, 1);
    b.add_bunch_entry({u, 0, 0});
    builders.push_back(std::move(b));
  }
  LabelArena arena = LabelArena::from_builders(std::move(builders));
  TzLabelBuilder bigger(0, 1);
  bigger.add_bunch_entry({0, 0, 0});
  bigger.add_bunch_entry({1, 0, 5});
  bigger.sort_bunch();
  arena.replace(0, bigger);
  EXPECT_TRUE(arena.view(0) == bigger.view());
  // The untouched node keeps its label.
  EXPECT_EQ(arena.view(1).count, 1u);
  EXPECT_EQ(arena.view(1).bunch_dist(1), 0u);
}

TEST(TzQuery, SameNodeIsZero) {
  TzLabelBuilder l(4, 2);
  EXPECT_EQ(tz_query(l.view(), l.view()), 0u);
}

TEST(TzQuery, Level0PivotHit) {
  // u=0, v=1 adjacent at distance 5; v holds u in its bunch.
  TzLabelBuilder lu(0, 2), lv(1, 2);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lv.add_bunch_entry({0, 0, 5});
  lu.add_bunch_entry({0, 0, 0});
  const Dist est = tz_query(lu.view(), lv.view());
  EXPECT_EQ(est, 5u);  // d(u,p0(u)) + d(v,p0(u)) = 0 + 5
}

TEST(TzQuery, FallsThroughToHigherLevel) {
  // Level 0 pivots miss both bunches; level 1 pivot w=9 is shared.
  TzLabelBuilder lu(0, 2), lv(1, 2);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lu.set_pivot(1, {4, 9});
  lv.set_pivot(1, {6, 9});
  lu.add_bunch_entry({9, 1, 4});
  lv.add_bunch_entry({9, 1, 6});
  const TzQueryTrace t = tz_query_trace(lu.view(), lv.view());
  EXPECT_EQ(t.estimate, 10u);
  EXPECT_EQ(t.level, 1u);
}

TEST(TzQuery, SymmetricCheckUsed) {
  // p0(v) in B(u) fires even though p0(u) misses B(v).
  TzLabelBuilder lu(0, 1), lv(1, 1);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lu.add_bunch_entry({1, 0, 8});  // v itself in u's bunch
  lu.add_bunch_entry({0, 0, 0});
  lu.sort_bunch();
  const TzQueryTrace t = tz_query_trace(lu.view(), lv.view());
  EXPECT_EQ(t.estimate, 8u);
  EXPECT_FALSE(t.used_u_pivot);
}

TEST(TzQuery, MalformedReturnsInf) {
  TzLabelBuilder lu(0, 1), lv(1, 1);  // empty labels, invalid pivots
  EXPECT_EQ(tz_query(lu.view(), lv.view()), kInfDist);
}

TEST(TzQueryExhaustive, PicksBestCommonMember) {
  TzLabelBuilder lu(0, 2), lv(1, 2);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lu.set_pivot(1, {10, 9});
  lv.set_pivot(1, {10, 9});
  // Standard query settles on the level-1 pivot 9 (cost 10+10 = 20),
  // but both bunches also share node 7 at cost 4+5 = 9.
  lu.add_bunch_entry({9, 1, 10});
  lv.add_bunch_entry({9, 1, 10});
  lu.add_bunch_entry({7, 0, 4});
  lv.add_bunch_entry({7, 0, 5});
  lu.sort_bunch();
  lv.sort_bunch();
  EXPECT_EQ(tz_query(lu.view(), lv.view()), 20u);
  EXPECT_EQ(tz_query_exhaustive(lu.view(), lv.view()), 9u);
}

TEST(TzQueryExhaustive, SameOwnerIsZero) {
  TzLabelBuilder l(4, 2);
  EXPECT_EQ(tz_query_exhaustive(l.view(), l.view()), 0u);
}

TEST(TzQueryExhaustive, DisjointBunchesInf) {
  TzLabelBuilder lu(0, 1), lv(1, 1);
  lu.add_bunch_entry({2, 0, 3});
  lv.add_bunch_entry({3, 0, 4});
  EXPECT_EQ(tz_query_exhaustive(lu.view(), lv.view()), kInfDist);
}

TEST(TzQueryExhaustive, DuplicateNodesAcrossLevelsIntersectOnce) {
  // Node 7 appears at two levels in both bunches with the same distance;
  // the sorted-merge must still find the best common member.
  TzLabelBuilder lu(0, 2), lv(1, 2);
  lu.add_bunch_entry({7, 0, 4});
  lu.add_bunch_entry({7, 1, 4});
  lv.add_bunch_entry({7, 1, 5});
  lu.sort_bunch();
  lv.sort_bunch();
  EXPECT_EQ(tz_query_exhaustive(lu.view(), lv.view()), 9u);
}

}  // namespace
}  // namespace dsketch
