#include <gtest/gtest.h>

#include "sketch/tz_label.hpp"

namespace dsketch {
namespace {

TEST(DistKey, LexicographicOrder) {
  EXPECT_TRUE((DistKey{1, 5} < DistKey{2, 0}));
  EXPECT_TRUE((DistKey{2, 0} < DistKey{2, 1}));
  EXPECT_FALSE((DistKey{2, 1} < DistKey{2, 1}));
  EXPECT_TRUE((DistKey{2, 1} == DistKey{2, 1}));
}

TEST(DistKey, DefaultIsInfinite) {
  const DistKey inf;
  EXPECT_TRUE((DistKey{kInfDist - 1, 0} < inf));
}

TEST(TzLabel, StoresPivotsAndBunch) {
  TzLabel l(3, 2);
  l.set_pivot(0, {0, 3});
  l.set_pivot(1, {7, 9});
  l.add_bunch_entry({9, 1, 7});
  l.add_bunch_entry({4, 0, 2});
  EXPECT_EQ(l.owner(), 3u);
  EXPECT_EQ(l.levels(), 2u);
  EXPECT_EQ(l.bunch_dist(9), 7u);
  EXPECT_EQ(l.bunch_dist(4), 2u);
  EXPECT_EQ(l.bunch_dist(5), kInfDist);
  EXPECT_TRUE(l.bunch_contains(4));
  EXPECT_FALSE(l.bunch_contains(5));
}

TEST(TzLabel, SizeWordsAccounting) {
  TzLabel l(0, 3);
  EXPECT_EQ(l.size_words(), 6u);  // 3 pivots x 2 words
  l.add_bunch_entry({1, 0, 5});
  EXPECT_EQ(l.size_words(), 8u);
}

TEST(TzLabel, SortBunchCanonicalizes) {
  TzLabel a(0, 2), b(0, 2);
  a.add_bunch_entry({5, 0, 9});
  a.add_bunch_entry({2, 1, 3});
  b.add_bunch_entry({2, 1, 3});
  b.add_bunch_entry({5, 0, 9});
  a.sort_bunch();
  b.sort_bunch();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.bunch_dist(5), 9u);  // index rebuilt after sort
}

TEST(TzQuery, SameNodeIsZero) {
  TzLabel l(4, 2);
  EXPECT_EQ(tz_query(l, l), 0u);
}

TEST(TzQuery, Level0PivotHit) {
  // u=0, v=1 adjacent at distance 5; v holds u in its bunch.
  TzLabel lu(0, 2), lv(1, 2);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lv.add_bunch_entry({0, 0, 5});
  lu.add_bunch_entry({0, 0, 0});
  const Dist est = tz_query(lu, lv);
  EXPECT_EQ(est, 5u);  // d(u,p0(u)) + d(v,p0(u)) = 0 + 5
}

TEST(TzQuery, FallsThroughToHigherLevel) {
  // Level 0 pivots miss both bunches; level 1 pivot w=9 is shared.
  TzLabel lu(0, 2), lv(1, 2);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lu.set_pivot(1, {4, 9});
  lv.set_pivot(1, {6, 9});
  lu.add_bunch_entry({9, 1, 4});
  lv.add_bunch_entry({9, 1, 6});
  const TzQueryTrace t = tz_query_trace(lu, lv);
  EXPECT_EQ(t.estimate, 10u);
  EXPECT_EQ(t.level, 1u);
}

TEST(TzQuery, SymmetricCheckUsed) {
  // p0(v) in B(u) fires even though p0(u) misses B(v).
  TzLabel lu(0, 1), lv(1, 1);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lu.add_bunch_entry({1, 0, 8});  // v itself in u's bunch
  lu.add_bunch_entry({0, 0, 0});
  const TzQueryTrace t = tz_query_trace(lu, lv);
  EXPECT_EQ(t.estimate, 8u);
  EXPECT_FALSE(t.used_u_pivot);
}

TEST(TzQuery, MalformedReturnsInf) {
  TzLabel lu(0, 1), lv(1, 1);  // empty labels, invalid pivots
  EXPECT_EQ(tz_query(lu, lv), kInfDist);
}

TEST(TzQueryExhaustive, PicksBestCommonMember) {
  TzLabel lu(0, 2), lv(1, 2);
  lu.set_pivot(0, {0, 0});
  lv.set_pivot(0, {0, 1});
  lu.set_pivot(1, {10, 9});
  lv.set_pivot(1, {10, 9});
  // Standard query settles on the level-1 pivot 9 (cost 10+10 = 20),
  // but both bunches also share node 7 at cost 4+5 = 9.
  lu.add_bunch_entry({9, 1, 10});
  lv.add_bunch_entry({9, 1, 10});
  lu.add_bunch_entry({7, 0, 4});
  lv.add_bunch_entry({7, 0, 5});
  EXPECT_EQ(tz_query(lu, lv), 20u);
  EXPECT_EQ(tz_query_exhaustive(lu, lv), 9u);
}

TEST(TzQueryExhaustive, SameOwnerIsZero) {
  TzLabel l(4, 2);
  EXPECT_EQ(tz_query_exhaustive(l, l), 0u);
}

TEST(TzQueryExhaustive, DisjointBunchesInf) {
  TzLabel lu(0, 1), lv(1, 1);
  lu.add_bunch_entry({2, 0, 3});
  lv.add_bunch_entry({3, 0, 4});
  EXPECT_EQ(tz_query_exhaustive(lu, lv), kInfDist);
}

}  // namespace
}  // namespace dsketch
