#include <gtest/gtest.h>

#include <cmath>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/graceful_sketch.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {
namespace {

TEST(GracefulSketch, BuildsLogNLevels) {
  const Graph g = erdos_renyi(128, 0.05, {1, 9}, 3);
  const auto r = build_graceful_sketches(g, {});
  EXPECT_EQ(r.sketches.num_levels(), 7u);  // ceil(log2 128)
}

TEST(GracefulSketch, MaxLevelsCapRespected) {
  const Graph g = erdos_renyi(128, 0.05, {1, 9}, 3);
  GracefulConfig cfg;
  cfg.max_levels = 3;
  const auto r = build_graceful_sketches(g, cfg);
  EXPECT_EQ(r.sketches.num_levels(), 3u);
}

TEST(GracefulSketch, NeverUnderestimates) {
  const Graph g = erdos_renyi(100, 0.06, {1, 9}, 7);
  const auto r = build_graceful_sketches(g, {});
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      const Dist est = r.sketches.query(u, v);
      ASSERT_NE(est, kInfDist);
      EXPECT_GE(est, oracle.query(u, v));
    }
  }
}

TEST(GracefulSketch, WorstCaseStretchLogarithmic) {
  const Graph g = erdos_renyi(128, 0.05, {1, 9}, 11);
  const auto r = build_graceful_sketches(g, {});
  const ExactOracle oracle(g);
  // Theorem: O(log n) worst case. With k_i = i at the deepest level
  // (i = log2 n = 7), the certified bound is 8*log2(n)-1; demand it.
  const double bound = 8.0 * std::log2(static_cast<double>(g.num_nodes()));
  double worst = 0;
  for (NodeId u = 0; u < g.num_nodes(); u += 2) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 3) {
      const double d = static_cast<double>(oracle.query(u, v));
      const double est = static_cast<double>(r.sketches.query(u, v));
      worst = std::max(worst, est / d);
    }
  }
  EXPECT_LE(worst, bound);
}

TEST(GracefulSketch, AverageStretchSmall) {
  const Graph g = erdos_renyi(150, 0.05, {1, 9}, 13);
  const auto r = build_graceful_sketches(g, {});
  const SampledGroundTruth gt(g, 20, 5);
  const auto report = evaluate_stretch(
      g, gt, [&](NodeId u, NodeId v) { return r.sketches.query(u, v); }, {});
  EXPECT_EQ(report.underestimates, 0u);
  // Theorem 1.3: O(1) average stretch; empirically it sits well under 4.
  EXPECT_LT(report.average_stretch(), 4.0);
}

TEST(GracefulSketch, SizeIsUnionOfLevels) {
  const Graph g = erdos_renyi(64, 0.1, {1, 5}, 5);
  const auto r = build_graceful_sketches(g, {});
  std::size_t sum = 0;
  for (std::size_t i = 0; i < r.sketches.num_levels(); ++i) {
    sum += r.sketches.level(i).size_words(3);
  }
  EXPECT_EQ(r.sketches.size_words(3), sum);
}

TEST(GracefulSketch, TotalCostAggregatesLevels) {
  const Graph g = erdos_renyi(64, 0.1, {1, 5}, 5);
  const auto r = build_graceful_sketches(g, {});
  std::uint64_t msgs = 0;
  for (const auto& lb : r.level_builds) msgs += lb.total().messages;
  EXPECT_EQ(r.total.messages, msgs);
}

TEST(GracefulSketch, MoreLevelsNeverWorseEstimates) {
  const Graph g = erdos_renyi(100, 0.06, {1, 9}, 21);
  GracefulConfig few;
  few.max_levels = 2;
  few.seed = 9;
  GracefulConfig many;
  many.seed = 9;
  const auto rf = build_graceful_sketches(g, few);
  const auto rm = build_graceful_sketches(g, many);
  // The first two levels use the same seeds, so the min over more levels
  // can only improve.
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      EXPECT_LE(rm.sketches.query(u, v), rf.sketches.query(u, v));
    }
  }
}

}  // namespace
}  // namespace dsketch
