#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "sketch/spanner.hpp"

namespace dsketch {
namespace {

Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(n, k, seed + bump++);
  }
  return h;
}

TEST(Spanner, EdgesAreSubsetOfGraph) {
  const Graph g = erdos_renyi(100, 0.08, {1, 9}, 3);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 5);
  std::unordered_set<std::uint64_t> original;
  for (const Edge& e : g.edges()) {
    original.insert((static_cast<std::uint64_t>(e.u) << 32) | e.v);
  }
  for (const Edge& e : extract_spanner(g, h)) {
    EXPECT_TRUE(original.count((static_cast<std::uint64_t>(e.u) << 32) | e.v))
        << e.u << "-" << e.v;
  }
}

TEST(Spanner, KEqualsOneKeepsShortestPathDag) {
  // k=1: clusters are all of V, so the spanner holds a full shortest path
  // tree per node — exact distances survive.
  const Graph g = grid2d(6, 6, {1, 7}, 2);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 1, 1);
  const Graph sp = spanner_graph(g, h);
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    const auto dg = dijkstra(g, u);
    const auto dh = dijkstra(sp, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(dh[v], dg[v]);
  }
}

TEST(Spanner, SparserThanOriginalOnDenseGraphs) {
  const Graph g = erdos_renyi(300, 0.2, {1, 9}, 7);  // dense
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 9);
  const auto spanner = extract_spanner(g, h);
  EXPECT_LT(spanner.size(), g.num_edges() / 2);
}

TEST(Spanner, ConnectedResult) {
  const Graph g = erdos_renyi(150, 0.06, {1, 9}, 11);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 4, 13);
  EXPECT_TRUE(spanner_graph(g, h).connected());
}

class SpannerStretchSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(SpannerStretchSweep, StretchBounded) {
  const auto [k, seed] = GetParam();
  const Graph g = random_graph_nm(120, 400, {1, 11}, seed);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, seed + 5);
  const Graph sp = spanner_graph(g, h);
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    const auto dg = dijkstra(g, u);
    const auto dh = dijkstra(sp, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == u) continue;
      ASSERT_NE(dh[v], kInfDist);
      EXPECT_GE(dh[v], dg[v]);  // subgraph distances cannot shrink
      EXPECT_LE(dh[v], (2 * k - 1) * dg[v])
          << "pair " << u << "," << v << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SpannerStretchSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace dsketch
