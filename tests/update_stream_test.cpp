#include "dynamics/update_stream.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "graph/generators.hpp"

namespace dsketch {
namespace {

Graph base_graph(NodeId n = 64) { return erdos_renyi(n, 0.1, {1, 9}, 11); }

std::uint64_t pair_key(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

TEST(UpdateStream, SameSeedSameStream) {
  const Graph g = base_graph();
  UpdateStreamConfig cfg;
  cfg.seed = 42;
  UpdateStream a(g, cfg);
  UpdateStream b(g, cfg);
  for (int i = 0; i < 50; ++i) {
    const EdgeUpdate ua = a.next();
    const EdgeUpdate ub = b.next();
    EXPECT_EQ(ua.kind, ub.kind);
    EXPECT_EQ(ua.u, ub.u);
    EXPECT_EQ(ua.v, ub.v);
    EXPECT_EQ(ua.weight, ub.weight);
    EXPECT_EQ(ua.old_weight, ub.old_weight);
  }
  EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());

  cfg.seed = 43;
  UpdateStream c(g, cfg);
  bool any_different = false;
  UpdateStream a2(g, UpdateStreamConfig{.seed = 42});
  for (int i = 0; i < 50 && !any_different; ++i) {
    const EdgeUpdate uc = c.next();
    const EdgeUpdate ua = a2.next();
    any_different = uc.kind != ua.kind || uc.u != ua.u || uc.v != ua.v ||
                    uc.weight != ua.weight;
  }
  EXPECT_TRUE(any_different);
}

TEST(UpdateStream, UpdatesAreConsistentWithTheTrackedEdgeSet) {
  const Graph g = base_graph();
  std::set<std::uint64_t> edges;
  std::map<std::uint64_t, Weight> weight;
  for (const Edge& e : g.edges()) {
    edges.insert(pair_key(e.u, e.v));
    weight[pair_key(e.u, e.v)] = e.weight;
  }
  UpdateStream stream(g, {.wmin = 1, .wmax = 9, .seed = 3});
  for (int i = 0; i < 200; ++i) {
    const EdgeUpdate up = stream.next();
    const std::uint64_t key = pair_key(up.u, up.v);
    switch (up.kind) {
      case UpdateKind::kInsert:
        EXPECT_EQ(edges.count(key), 0u) << "inserted an existing edge";
        EXPECT_NE(up.u, up.v);
        EXPECT_GE(up.weight, 1u);
        EXPECT_LE(up.weight, 9u);
        edges.insert(key);
        weight[key] = up.weight;
        break;
      case UpdateKind::kDelete:
        EXPECT_EQ(edges.count(key), 1u) << "deleted a missing edge";
        EXPECT_EQ(up.old_weight, weight[key]);
        edges.erase(key);
        weight.erase(key);
        break;
      case UpdateKind::kReweight:
        EXPECT_EQ(edges.count(key), 1u) << "reweighted a missing edge";
        EXPECT_EQ(up.old_weight, weight[key]);
        EXPECT_NE(up.weight, up.old_weight);
        weight[key] = up.weight;
        break;
    }
  }
  // The stream's graph mirrors the tracked set exactly.
  EXPECT_EQ(stream.graph().num_edges(), edges.size());
  for (const Edge& e : stream.graph().edges()) {
    const auto it = weight.find(pair_key(e.u, e.v));
    ASSERT_NE(it, weight.end());
    EXPECT_EQ(e.weight, it->second);
  }
  EXPECT_EQ(stream.applied(), 200u);
}

TEST(UpdateStream, GraphStaysConnectedUnderHeavyDeletes) {
  const Graph g = base_graph(48);
  UpdateStreamConfig cfg;
  cfg.insert_weight = 0.1;
  cfg.delete_weight = 2.0;
  cfg.reweight_weight = 0.1;
  cfg.seed = 5;
  UpdateStream stream(g, cfg);
  for (int i = 0; i < 100; ++i) {
    stream.next();
    if (i % 20 == 19) EXPECT_TRUE(stream.graph().connected());
  }
  EXPECT_TRUE(stream.graph().connected());
}

TEST(UpdateStream, PureMixesProduceOnlyThatKind) {
  const Graph g = base_graph();
  UpdateStreamConfig inserts_only;
  inserts_only.delete_weight = 0;
  inserts_only.reweight_weight = 0;
  UpdateStream ins(g, inserts_only);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(ins.next().kind, UpdateKind::kInsert);
  }

  UpdateStreamConfig reweight_only;
  reweight_only.insert_weight = 0;
  reweight_only.delete_weight = 0;
  UpdateStream rw(g, reweight_only);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(rw.next().kind, UpdateKind::kReweight);
  }
}

TEST(UpdateStream, InfeasibleKindFallsThrough) {
  // A triangle where every edge is load-bearing after one delete: a
  // delete-only stream must still produce *something* (falling through
  // to insert/reweight) rather than stalling.
  const Graph tri = Graph::from_edges(
      3, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}});
  UpdateStreamConfig cfg;
  cfg.insert_weight = 0;
  cfg.delete_weight = 1;
  cfg.reweight_weight = 0;
  cfg.wmin = 1;
  cfg.wmax = 4;
  UpdateStream stream(tri, cfg);
  // First delete turns the triangle into a path (both remaining edges
  // bridges); subsequent updates must fall through, and the graph must
  // stay connected throughout.
  for (int i = 0; i < 10; ++i) {
    stream.next();
    EXPECT_TRUE(stream.graph().connected());
  }
}

TEST(UpdateStream, DistanceDecreaseClassification) {
  EdgeUpdate insert{UpdateKind::kInsert, 0, 1, 5, 0};
  EdgeUpdate del{UpdateKind::kDelete, 0, 1, 0, 5};
  EdgeUpdate down{UpdateKind::kReweight, 0, 1, 2, 5};
  EdgeUpdate up{UpdateKind::kReweight, 0, 1, 7, 5};
  EXPECT_TRUE(is_distance_decrease(insert));
  EXPECT_FALSE(is_distance_decrease(del));
  EXPECT_TRUE(is_distance_decrease(down));
  EXPECT_FALSE(is_distance_decrease(up));
  EXPECT_STREQ(update_kind_name(UpdateKind::kInsert), "insert");
  EXPECT_STREQ(update_kind_name(UpdateKind::kDelete), "delete");
  EXPECT_STREQ(update_kind_name(UpdateKind::kReweight), "reweight");
}

}  // namespace
}  // namespace dsketch
