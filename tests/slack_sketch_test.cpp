#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "baselines/exact_oracle.hpp"
#include "graph/generators.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/stretch_eval.hpp"

namespace dsketch {
namespace {

TEST(SlackSketch, NeverUnderestimates) {
  const Graph g = erdos_renyi(100, 0.05, {1, 9}, 3);
  const auto r = build_slack_sketches(g, 0.2, 5);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 3) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 4) {
      EXPECT_GE(r.sketches.query(u, v), oracle.query(u, v));
    }
  }
}

TEST(SlackSketch, Stretch3OnFarPairs) {
  const Graph g = erdos_renyi(150, 0.04, {1, 9}, 11);
  const double eps = 0.15;
  const auto r = build_slack_sketches(g, eps, 7);
  const ExactOracle oracle(g);
  for (NodeId u = 0; u < g.num_nodes(); u += 5) {
    const auto flags = far_flags(oracle.row(u), u, eps);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == u || !flags[v]) continue;
      const Dist d = oracle.query(u, v);
      EXPECT_LE(r.sketches.query(u, v), 3 * d)
          << "far pair " << u << "," << v;
    }
  }
}

TEST(SlackSketch, SizeMatchesNet) {
  const Graph g = ring(64, {1, 3}, 2);
  const auto r = build_slack_sketches(g, 0.25, 3);
  EXPECT_EQ(r.sketches.size_words(0), 2 * r.sketches.net().size());
}

TEST(SlackSketch, QuerySymmetric) {
  const Graph g = grid2d(7, 7, {1, 5}, 4);
  const auto r = build_slack_sketches(g, 0.2, 9);
  for (NodeId u = 0; u < g.num_nodes(); u += 4) {
    for (NodeId v = u + 1; v < g.num_nodes(); v += 5) {
      EXPECT_EQ(r.sketches.query(u, v), r.sketches.query(v, u));
    }
  }
}

TEST(SlackSketch, SelfQueryZero) {
  const Graph g = ring(16, {1, 2}, 1);
  const auto r = build_slack_sketches(g, 0.3, 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(r.sketches.query(u, u), 0u);
  }
}

TEST(SlackSketch, NetNodePairsAreExactViaThemselves) {
  const Graph g = erdos_renyi(80, 0.07, {1, 9}, 13);
  const auto r = build_slack_sketches(g, 0.3, 5);
  const ExactOracle oracle(g);
  // A net node w has d(w,w)=0 in its own table, so queries from w are exact
  // whenever w itself is the best hub... at minimum never worse than
  // d(w,x) + 0? Check the one guaranteed case: both endpoints in the net.
  const auto& net = r.sketches.net();
  for (std::size_t i = 0; i < net.size(); ++i) {
    for (std::size_t j = i + 1; j < net.size(); ++j) {
      EXPECT_EQ(r.sketches.query(net[i], net[j]), oracle.query(net[i], net[j]));
    }
  }
}

class SlackSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(SlackSweep, GuaranteeAcrossParameters) {
  const auto [eps, seed] = GetParam();
  const Graph g = random_graph_nm(100, 250, {1, 9}, seed);
  const auto r = build_slack_sketches(g, eps, seed + 50);
  const ExactOracle oracle(g);
  std::size_t far_checked = 0;
  for (NodeId u = 0; u < g.num_nodes(); u += 7) {
    const auto flags = far_flags(oracle.row(u), u, eps);
    for (NodeId v = 0; v < g.num_nodes(); v += 3) {
      if (v == u) continue;
      const Dist d = oracle.query(u, v);
      const Dist est = r.sketches.query(u, v);
      EXPECT_GE(est, d);
      if (flags[v]) {
        EXPECT_LE(est, 3 * d);
        ++far_checked;
      }
    }
  }
  EXPECT_GT(far_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Grid, SlackSweep,
                         ::testing::Combine(::testing::Values(0.1, 0.2, 0.4),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace dsketch
