// Accounting conservation: the per-round telemetry stream (obs/round_log)
// and the aggregate SimStats are two views of the same run, produced by
// different code paths — the stream by windowed emission with adaptive
// stride, the aggregate by the simulator's counters. On real experiment
// workloads (the E4 slack build, the E8 online Bellman–Ford, the E15
// distributed-build pipeline) the summed window deltas must equal the
// stats totals exactly: no double count, no drop at stride boundaries,
// per phase and in aggregate.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "congest/bellman_ford.hpp"
#include "graph/generators.hpp"
#include "obs/round_log.hpp"
#include "sketch/slack_sketch.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

using obs::RoundLog;

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::uint64_t field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << line;
  if (pos == std::string::npos) return 0;
  return std::stoull(line.substr(pos + needle.size()));
}

std::string phase_of(const std::string& line) {
  const std::string needle = "\"phase\":\"";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << "phase missing in " << line;
  if (pos == std::string::npos) return "";
  const auto start = pos + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

/// Sums of the streamed window deltas, per phase label.
struct PhaseTotals {
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  std::uint64_t rounds = 0;  // executed rounds covered by windows
};

std::map<std::string, PhaseTotals> totals_by_phase(const std::string& text) {
  std::map<std::string, PhaseTotals> totals;
  for (const std::string& line : lines_of(text)) {
    PhaseTotals& t = totals[phase_of(line)];
    t.messages += field(line, "messages");
    t.words += field(line, "words");
    t.rounds += field(line, "rounds_in_window");
  }
  return totals;
}

TEST(AccountingConservation, SlackBuildStreamMatchesStats) {
  // The E4 workload: a slack-sketch build streaming per-round telemetry.
  // A tight line budget forces several stride doublings mid-phase.
  const Graph g = erdos_renyi(150, 0.05, {1, 8}, 17);
  std::ostringstream out;
  RoundLog::Options opts;
  opts.experiment = "e4";
  opts.max_lines_per_phase = 4;
  RoundLog log(out, opts);
  SimConfig cfg;
  cfg.round_log = &log;
  const SlackSketchResult r = build_slack_sketches(g, 0.1, 9, cfg);
  log.flush();

  const auto totals = totals_by_phase(out.str());
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  for (const auto& [phase, t] : totals) {
    messages += t.messages;
    words += t.words;
  }
  EXPECT_EQ(messages, r.stats.messages);
  EXPECT_EQ(words, r.stats.words);
  // Per-phase attribution: every streamed phase label shows up in the
  // stats breakdown with exactly the streamed message total.
  for (const SimPhase& p : r.stats.breakdown()) {
    const auto it = totals.find(p.label);
    ASSERT_NE(it, totals.end()) << "phase " << p.label << " not streamed";
    EXPECT_EQ(it->second.messages, p.messages) << "phase " << p.label;
    EXPECT_EQ(it->second.words, p.words) << "phase " << p.label;
  }
}

TEST(AccountingConservation, OnlineBellmanFordStreamMatchesStats) {
  // The E8 workload: online single-source distance on two topology
  // shapes, both runs streaming into one log under distinct phase labels.
  std::ostringstream out;
  RoundLog::Options opts;
  opts.experiment = "e8";
  opts.max_lines_per_phase = 8;
  RoundLog log(out, opts);

  const Graph er = erdos_renyi(200, 0.04, {1, 9}, 23);
  SimConfig er_cfg;
  er_cfg.phase = "online_bf_er";
  er_cfg.round_log = &log;
  const SimStats er_stats = online_distance_rounds(er, 0, er_cfg);

  const Graph pg = path(120, {1, 16}, 24);
  SimConfig path_cfg;
  path_cfg.phase = "online_bf_path";
  path_cfg.round_log = &log;
  const SimStats path_stats = online_distance_rounds(pg, 0, path_cfg);
  log.flush();

  const auto totals = totals_by_phase(out.str());
  ASSERT_TRUE(totals.count("online_bf_er"));
  ASSERT_TRUE(totals.count("online_bf_path"));
  EXPECT_EQ(totals.at("online_bf_er").messages, er_stats.messages);
  EXPECT_EQ(totals.at("online_bf_er").words, er_stats.words);
  EXPECT_EQ(totals.at("online_bf_path").messages, path_stats.messages);
  EXPECT_EQ(totals.at("online_bf_path").words, path_stats.words);
  // Bellman–Ford keeps traffic in flight every round (no timers), so the
  // windows must cover the full round span with no gap or overlap.
  EXPECT_EQ(totals.at("online_bf_er").rounds, er_stats.rounds);
  EXPECT_EQ(totals.at("online_bf_path").rounds, path_stats.rounds);
}

TEST(AccountingConservation, DistributedTzPipelineStreamMatchesStats) {
  // The E15 workload: leader election + BFS tree, then the echo-
  // terminated TZ construction, sharing one round log across both
  // simulator runs (the builder forwards SimConfig to each).
  const Graph g = erdos_renyi(180, 0.045, {1, 7}, 29);
  Hierarchy h = Hierarchy::sample(g.num_nodes(), 3, 31);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(g.num_nodes(), 3, 31 + bump++);
  }
  std::ostringstream out;
  RoundLog::Options opts;
  opts.experiment = "e15";
  opts.max_lines_per_phase = 6;
  RoundLog log(out, opts);
  SimConfig cfg;
  cfg.round_log = &log;
  cfg.threads = 2;  // conservation must hold on the threaded paths too
  const auto r = build_tz_distributed(g, h, TerminationMode::kEcho, cfg);
  log.flush();

  const auto totals = totals_by_phase(out.str());
  ASSERT_TRUE(totals.count("bfs_tree"));
  ASSERT_TRUE(totals.count("tz_construction"));
  EXPECT_EQ(totals.at("bfs_tree").messages, r.tree_stats.messages);
  EXPECT_EQ(totals.at("bfs_tree").words, r.tree_stats.words);
  EXPECT_EQ(totals.at("tz_construction").messages, r.stats.messages);
  EXPECT_EQ(totals.at("tz_construction").words, r.stats.words);
  std::uint64_t messages = 0;
  for (const auto& [phase, t] : totals) messages += t.messages;
  EXPECT_EQ(messages, r.total_messages());
}

}  // namespace
}  // namespace dsketch
