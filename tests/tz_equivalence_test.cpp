// The load-bearing test of the reproduction: for a fixed hierarchy, the
// distributed Algorithm 2 must produce *exactly* the labels of the
// centralized Thorup-Zwick construction — same pivots, same bunches, same
// distances — in both termination modes. This is the paper's implicit
// correctness claim (Lemma 3.5) made executable.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(n, k, seed + bump++);
  }
  return h;
}

void expect_equal_labels(const std::vector<TzLabel>& a,
                         const std::vector<TzLabel>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    ASSERT_TRUE(a[u] == b[u]) << "label mismatch at node " << u;
  }
}

struct Case {
  const char* name;
  Graph graph;
};

std::vector<Case> topologies(std::uint64_t seed) {
  std::vector<Case> cases;
  cases.push_back({"erdos_renyi", erdos_renyi(90, 0.06, {1, 9}, seed)});
  cases.push_back({"grid", grid2d(9, 9, {1, 13}, seed)});
  cases.push_back({"tree", random_tree(70, {1, 9}, seed)});
  cases.push_back({"ring_chords", ring_with_chords(80, 25, 7, 1, seed)});
  cases.push_back({"ba", barabasi_albert(80, 2, {1, 5}, seed)});
  cases.push_back({"path_weighted", path(50, {1, 30}, seed)});
  return cases;
}

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(EquivalenceSweep, DistributedOracleEqualsCentralized) {
  const auto [k, seed] = GetParam();
  for (auto& c : topologies(seed)) {
    const Hierarchy h = sampled_hierarchy(c.graph.num_nodes(), k, seed + 7);
    const auto central = build_tz_centralized(c.graph, h);
    const auto distributed =
        build_tz_distributed(c.graph, h, TerminationMode::kOracle);
    SCOPED_TRACE(c.name);
    expect_equal_labels(central, distributed.labels);
  }
}

TEST_P(EquivalenceSweep, DistributedEchoEqualsCentralized) {
  const auto [k, seed] = GetParam();
  for (auto& c : topologies(seed)) {
    const Hierarchy h = sampled_hierarchy(c.graph.num_nodes(), k, seed + 7);
    const auto central = build_tz_centralized(c.graph, h);
    const auto distributed =
        build_tz_distributed(c.graph, h, TerminationMode::kEcho);
    SCOPED_TRACE(c.name);
    expect_equal_labels(central, distributed.labels);
  }
}

TEST_P(EquivalenceSweep, DistributedKnownSEqualsCentralized) {
  const auto [k, seed] = GetParam();
  for (auto& c : topologies(seed)) {
    const Hierarchy h = sampled_hierarchy(c.graph.num_nodes(), k, seed + 7);
    const auto central = build_tz_centralized(c.graph, h);
    const auto distributed =
        build_tz_distributed(c.graph, h, TerminationMode::kKnownS);
    SCOPED_TRACE(c.name);
    expect_equal_labels(central, distributed.labels);
    // The padded deadlines dominate the true convergence time.
    const auto oracle =
        build_tz_distributed(c.graph, h, TerminationMode::kOracle);
    EXPECT_GE(distributed.stats.rounds, oracle.stats.rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EquivalenceSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                                            ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace dsketch
