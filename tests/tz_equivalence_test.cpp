// The load-bearing test of the reproduction: for a fixed hierarchy, the
// distributed Algorithm 2 must produce *exactly* the labels of the
// centralized Thorup-Zwick construction — same pivots, same bunches, same
// distances — in both termination modes. This is the paper's implicit
// correctness claim (Lemma 3.5) made executable.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "dynamics/incremental.hpp"
#include "graph/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "serve/query_service.hpp"
#include "serve/sketch_store.hpp"
#include "sketch/tz_centralized.hpp"
#include "sketch/tz_distributed.hpp"

namespace dsketch {
namespace {

Hierarchy sampled_hierarchy(NodeId n, std::uint32_t k, std::uint64_t seed) {
  Hierarchy h = Hierarchy::sample(n, k, seed);
  std::uint64_t bump = 1;
  while (!h.top_level_nonempty()) {
    h = Hierarchy::sample(n, k, seed + bump++);
  }
  return h;
}

void expect_equal_labels(const LabelArena& a, const LabelArena& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    ASSERT_TRUE(a.view(u) == b.view(u)) << "label mismatch at node " << u;
  }
}

struct Case {
  const char* name;
  Graph graph;
};

std::vector<Case> topologies(std::uint64_t seed) {
  std::vector<Case> cases;
  cases.push_back({"erdos_renyi", erdos_renyi(90, 0.06, {1, 9}, seed)});
  cases.push_back({"grid", grid2d(9, 9, {1, 13}, seed)});
  cases.push_back({"tree", random_tree(70, {1, 9}, seed)});
  cases.push_back({"ring_chords", ring_with_chords(80, 25, 7, 1, seed)});
  cases.push_back({"ba", barabasi_albert(80, 2, {1, 5}, seed)});
  cases.push_back({"path_weighted", path(50, {1, 30}, seed)});
  cases.push_back({"star", star(60, {1, 11}, seed)});
  return cases;
}

/// Disjoint union of graphs (node ids offset in order) plus `isolated`
/// extra degree-zero vertices at the end. The generators always add a
/// connectivity backbone, so disconnected inputs are assembled here.
Graph disjoint_union(const std::vector<Graph>& parts, NodeId isolated) {
  std::vector<Edge> edges;
  NodeId offset = 0;
  for (const Graph& part : parts) {
    for (NodeId u = 0; u < part.num_nodes(); ++u) {
      for (const HalfEdge& he : part.neighbors(u)) {
        if (he.to > u) {
          edges.push_back(Edge{offset + u, offset + he.to, he.weight});
        }
      }
    }
    offset += part.num_nodes();
  }
  return Graph::from_edges(offset + isolated, edges);
}

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {
};

TEST_P(EquivalenceSweep, DistributedOracleEqualsCentralized) {
  const auto [k, seed] = GetParam();
  for (auto& c : topologies(seed)) {
    const Hierarchy h = sampled_hierarchy(c.graph.num_nodes(), k, seed + 7);
    const auto central = build_tz_centralized(c.graph, h);
    const auto distributed =
        build_tz_distributed(c.graph, h, TerminationMode::kOracle);
    SCOPED_TRACE(c.name);
    expect_equal_labels(central, distributed.labels);
  }
}

TEST_P(EquivalenceSweep, DistributedEchoEqualsCentralized) {
  const auto [k, seed] = GetParam();
  for (auto& c : topologies(seed)) {
    const Hierarchy h = sampled_hierarchy(c.graph.num_nodes(), k, seed + 7);
    const auto central = build_tz_centralized(c.graph, h);
    const auto distributed =
        build_tz_distributed(c.graph, h, TerminationMode::kEcho);
    SCOPED_TRACE(c.name);
    expect_equal_labels(central, distributed.labels);
  }
}

TEST_P(EquivalenceSweep, DistributedKnownSEqualsCentralized) {
  const auto [k, seed] = GetParam();
  for (auto& c : topologies(seed)) {
    const Hierarchy h = sampled_hierarchy(c.graph.num_nodes(), k, seed + 7);
    const auto central = build_tz_centralized(c.graph, h);
    const auto distributed =
        build_tz_distributed(c.graph, h, TerminationMode::kKnownS);
    SCOPED_TRACE(c.name);
    expect_equal_labels(central, distributed.labels);
    // The padded deadlines dominate the true convergence time.
    const auto oracle =
        build_tz_distributed(c.graph, h, TerminationMode::kOracle);
    EXPECT_GE(distributed.stats.rounds, oracle.stats.rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, EquivalenceSweep,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(Disconnected, AllTerminationModesMatchCentralized) {
  // Multi-component input: three generated components of different shapes
  // plus three isolated vertices. Every termination mode must reproduce
  // the centralized labels — echo mode runs one §3.3 cascade per
  // component root, known-S uses the largest component diameter.
  std::vector<Graph> parts;
  parts.push_back(erdos_renyi(40, 0.08, {1, 7}, 5));
  parts.push_back(grid2d(5, 5, {1, 9}, 6));
  parts.push_back(path(12, {1, 20}, 7));
  std::uint32_t S = 0;
  for (const Graph& part : parts) {
    S = std::max(S, shortest_path_diameter(part));
  }
  const Graph g = disjoint_union(parts, /*isolated=*/3);
  for (const std::uint32_t k : {1u, 2u, 3u}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, 21);
    const auto central = build_tz_centralized(g, h);
    const auto oracle =
        build_tz_distributed(g, h, TerminationMode::kOracle);
    expect_equal_labels(central, oracle.labels);
    const auto echo = build_tz_distributed(g, h, TerminationMode::kEcho);
    expect_equal_labels(central, echo.labels);
    // One phase-completion record per phase, taken network-wide across
    // the per-component cascades.
    EXPECT_EQ(echo.phase_end_rounds.size(), k);
    const auto known =
        build_tz_distributed(g, h, TerminationMode::kKnownS, {},
                             /*eager_send=*/false, /*known_S=*/S);
    expect_equal_labels(central, known.labels);
  }
}

void expect_equal_stats(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.words, b.words);
  EXPECT_EQ(a.node_steps, b.node_steps);
  EXPECT_EQ(a.max_outbox, b.max_outbox);
  EXPECT_EQ(a.hit_round_limit, b.hit_round_limit);
}

TEST(Determinism, ByteIdenticalAcrossWorkerThreadsAndReruns) {
  // The event-driven simulator's contract: for a fixed graph and config,
  // labels, routing, per-phase round counts, and every stats counter are
  // identical no matter how many worker threads step the nodes — and
  // across reruns. 300 nodes keeps the active set above the parallelism
  // threshold so the threaded paths genuinely engage.
  const Graph g = erdos_renyi(300, 0.04, {1, 9}, 77);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 3, 78);
  SimConfig base;
  base.threads = 1;
  const auto reference =
      build_tz_distributed(g, h, TerminationMode::kEcho, base);
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SimConfig cfg;
    cfg.threads = threads;
    const auto run = build_tz_distributed(g, h, TerminationMode::kEcho, cfg);
    expect_equal_labels(reference.labels, run.labels);
    expect_equal_stats(reference.stats, run.stats);
    expect_equal_stats(reference.tree_stats, run.tree_stats);
    EXPECT_EQ(reference.phase_end_rounds, run.phase_end_rounds);
    ASSERT_EQ(reference.routing.next_hop.size(), run.routing.next_hop.size());
    for (std::size_t u = 0; u < run.routing.next_hop.size(); ++u) {
      EXPECT_EQ(reference.routing.next_hop[u], run.routing.next_hop[u]);
    }
  }
}

TEST(Determinism, OracleAndKnownSModesAcrossThreadCounts) {
  const Graph g = barabasi_albert(250, 3, {1, 6}, 31);
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), 2, 32);
  for (const TerminationMode mode :
       {TerminationMode::kOracle, TerminationMode::kKnownS}) {
    SimConfig base;
    base.threads = 1;
    const auto reference = build_tz_distributed(g, h, mode, base);
    for (const unsigned threads : {2u, 8u}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      SimConfig cfg;
      cfg.threads = threads;
      const auto run = build_tz_distributed(g, h, mode, cfg);
      expect_equal_labels(reference.labels, run.labels);
      expect_equal_stats(reference.stats, run.stats);
    }
  }
}

TEST(ServePath, DistributedBuildPackServeMatchesCentralized) {
  // The full deployment loop at test scale: build sketches in the
  // network (echo termination, threaded), pack the labels into the
  // serving-tier SketchStore, answer through the sharded QueryService —
  // and require every answer to be distance-identical to a tz_query over
  // the centralized labels.
  const Graph g = erdos_renyi(120, 0.05, {1, 9}, 91);
  const std::uint32_t k = 3;
  const Hierarchy h = sampled_hierarchy(g.num_nodes(), k, 92);
  const auto central = build_tz_centralized(g, h);
  SimConfig cfg;
  cfg.threads = 2;
  const auto distributed =
      build_tz_distributed(g, h, TerminationMode::kEcho, cfg);
  expect_equal_labels(central, distributed.labels);

  const TzLabelOracle oracle(distributed.labels, k);
  const SketchStore store = SketchStore::from_oracle(oracle);
  QueryServiceConfig qcfg;
  qcfg.shards = 8;
  qcfg.threads = 2;
  QueryService service(store, qcfg);
  const NodeId n = g.num_nodes();
  std::vector<QueryService::Pair> pairs;
  for (NodeId u = 0; u < n; u += 3) {
    for (NodeId v = u + 1; v < n; v += 5) {
      pairs.emplace_back(u, v);
    }
  }
  std::vector<Dist> answers(pairs.size());
  service.query_batch(pairs, answers);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(answers[i],
              tz_query(central.view(pairs[i].first), central.view(pairs[i].second)))
        << "pair (" << pairs[i].first << ", " << pairs[i].second << ")";
  }
}

}  // namespace
}  // namespace dsketch
