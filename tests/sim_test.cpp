#include <gtest/gtest.h>

#include <vector>

#include "congest/sim.hpp"
#include "graph/generators.hpp"

namespace dsketch {
namespace {

/// Flood protocol: node 0 sends a token; every receiver re-floods once.
/// Completes in exactly ecc(0) rounds of useful work.
class FloodProtocol : public Protocol {
 public:
  explicit FloodProtocol(NodeId n) : seen_(n, 0), seen_round_(n, 0) {}

  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      seen_[0] = 1;
      ctx.broadcast(Message{42});
    }
  }
  void on_round(NodeCtx& ctx) override {
    if (!ctx.inbox().empty() && !seen_[ctx.node()]) {
      seen_[ctx.node()] = 1;
      seen_round_[ctx.node()] = ctx.round();
      ctx.broadcast(Message{42});
    }
  }

  bool all_seen() const {
    for (const char s : seen_) {
      if (!s) return false;
    }
    return true;
  }
  std::uint64_t seen_round(NodeId u) const { return seen_round_[u]; }

 private:
  std::vector<char> seen_;
  std::vector<std::uint64_t> seen_round_;
};

TEST(Simulator, FloodReachesEveryone) {
  const Graph g = erdos_renyi(100, 0.05, {1, 5}, 2);
  FloodProtocol p(g.num_nodes());
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_TRUE(p.all_seen());
  EXPECT_FALSE(stats.hit_round_limit);
  EXPECT_GT(stats.messages, 0u);
}

TEST(Simulator, FloodRoundsEqualHopDistance) {
  const Graph g = path(10, {1, 1}, 0);
  FloodProtocol p(g.num_nodes());
  Simulator sim(g, p);
  sim.run();
  // Node i hears the token exactly at round i (sent in round i-1).
  for (NodeId u = 1; u < 10; ++u) EXPECT_EQ(p.seen_round(u), u);
}

TEST(Simulator, MessageCountedPerEdgeTraversal) {
  // Triangle flood: 0 broadcasts (2 msgs); 1 and 2 each broadcast (2 each).
  const Graph g = complete(3, {1, 1}, 0);
  FloodProtocol p(3);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.messages, 6u);
}

/// Sends `count` messages on edge 0 at once; capacity must spread them
/// across rounds.
class BurstProtocol : public Protocol {
 public:
  explicit BurstProtocol(std::size_t count) : count_(count) {}
  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == 0) {
      for (std::size_t i = 0; i < count_; ++i) {
        ctx.send(0, Message{static_cast<Word>(i)});
      }
    }
  }
  void on_round(NodeCtx& ctx) override {
    for (const Inbound& in : ctx.inbox()) {
      received_.push_back(in.msg.at(0));
      receive_rounds_.push_back(ctx.round());
    }
  }
  const std::vector<Word>& received() const { return received_; }
  const std::vector<std::uint64_t>& receive_rounds() const {
    return receive_rounds_;
  }

 private:
  std::size_t count_;
  std::vector<Word> received_;
  std::vector<std::uint64_t> receive_rounds_;
};

TEST(Simulator, EdgeCapacityOneMessagePerRound) {
  const Graph g = path(2, {1, 1}, 0);
  BurstProtocol p(5);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  ASSERT_EQ(p.received().size(), 5u);
  // FIFO order preserved and one delivery per round.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(p.received()[i], i);
    EXPECT_EQ(p.receive_rounds()[i], i + 1);
  }
  EXPECT_GE(stats.rounds, 5u);
  EXPECT_EQ(stats.max_outbox, 5u);
}

TEST(Simulator, CapacityAblationShipsBurstAtOnce) {
  const Graph g = path(2, {1, 1}, 0);
  BurstProtocol p(5);
  SimConfig cfg;
  cfg.enforce_capacity = false;
  Simulator sim(g, p, cfg);
  sim.run();
  ASSERT_EQ(p.received().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(p.receive_rounds()[i], 1u);
  }
}

TEST(Simulator, WordAccounting) {
  const Graph g = path(2, {1, 1}, 0);
  BurstProtocol p(3);
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.words, 3u);  // one word per message
}

/// Wake-based counter: counts rounds it stays awake without any messages.
class WakeProtocol : public Protocol {
 public:
  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == 0) ctx.wake();
  }
  void on_round(NodeCtx& ctx) override {
    ++wakes_;
    if (wakes_ < 5) ctx.wake();
  }
  int wakes() const { return wakes_; }

 private:
  int wakes_ = 0;
};

/// Timer protocol: node 0 schedules a wake far in the future; the simulator
/// must fast-forward idle rounds (cheaply) while still counting them.
class TimerProtocol : public Protocol {
 public:
  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == 0) ctx.wake_at(1000);
  }
  void on_round(NodeCtx& ctx) override { fired_round_ = ctx.round(); }
  std::uint64_t fired_round() const { return fired_round_; }

 private:
  std::uint64_t fired_round_ = 0;
};

TEST(Simulator, WakeAtFastForwardsIdleRounds) {
  const Graph g = ring(16, {1, 1}, 0);
  TimerProtocol p;
  Simulator sim(g, p);
  const SimStats stats = sim.run();
  EXPECT_EQ(p.fired_round(), 1000u);
  EXPECT_GE(stats.rounds, 1000u);
  // Fast-forward means almost no node steps despite 1000 rounds.
  EXPECT_LE(stats.node_steps, 20u);
}

TEST(Simulator, WakeAtPastRoundFiresNextRound) {
  const Graph g = ring(8, {1, 1}, 0);

  class PastTimer : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() == 0) ctx.wake_at(0);  // already passed
    }
    void on_round(NodeCtx&) override { ++fires_; }
    int fires_ = 0;
  };
  PastTimer p;
  Simulator sim(g, p);
  sim.run();
  EXPECT_EQ(p.fires_, 1);
}

TEST(Simulator, WakeKeepsNodeActiveWithoutMessages) {
  const Graph g = path(3, {1, 1}, 0);
  WakeProtocol p;
  Simulator sim(g, p);
  sim.run();
  EXPECT_EQ(p.wakes(), 5);
}

/// Quiescence hook restarts the run twice.
class PhasedProtocol : public Protocol {
 public:
  void on_start(NodeCtx& ctx) override {
    if (ctx.node() == 0) ctx.broadcast(Message{static_cast<Word>(phase_)});
  }
  void on_round(NodeCtx&) override {}
  bool on_quiescent(Simulator& sim) override {
    if (++phase_ < 3) {
      sim.activate_all();
      return true;
    }
    return false;
  }
  int phases() const { return phase_; }

 private:
  int phase_ = 0;
};

TEST(Simulator, QuiescenceDrivesPhases) {
  const Graph g = ring(8, {1, 1}, 0);
  PhasedProtocol p;
  Simulator sim(g, p);
  sim.run();
  EXPECT_EQ(p.phases(), 3);
}

TEST(Simulator, RoundLimitFlag) {
  const Graph g = ring(8, {1, 1}, 0);

  class Chatter : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override { ctx.broadcast(Message{1}); }
    void on_round(NodeCtx& ctx) override { ctx.broadcast(Message{1}); }
  };
  Chatter p;
  SimConfig cfg;
  cfg.max_rounds = 50;
  Simulator sim(g, p, cfg);
  const SimStats stats = sim.run();
  EXPECT_TRUE(stats.hit_round_limit);
  EXPECT_EQ(stats.rounds, 50u);
}

TEST(Simulator, DeterministicAcrossThreadCounts) {
  const Graph g = erdos_renyi(200, 0.03, {1, 7}, 13);

  auto run_flood = [&](unsigned threads) {
    FloodProtocol p(g.num_nodes());
    SimConfig cfg;
    cfg.threads = threads;
    Simulator sim(g, p, cfg);
    const SimStats stats = sim.run();
    std::vector<std::uint64_t> rounds;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      rounds.push_back(p.seen_round(u));
    }
    rounds.push_back(stats.messages);
    rounds.push_back(stats.rounds);
    return rounds;
  };
  EXPECT_EQ(run_flood(1), run_flood(4));
  EXPECT_EQ(run_flood(1), run_flood(0));  // 0 = hardware concurrency
}

TEST(Simulator, MessageSizeCapEnforced) {
  const Graph g = path(2, {1, 1}, 0);

  class Oversized : public Protocol {
   public:
    void on_start(NodeCtx& ctx) override {
      if (ctx.node() == 0) {
        ctx.send(0, Message{1, 2, 3, 4, 5});  // 5 words > default cap 4
      }
    }
    void on_round(NodeCtx&) override {}
  };
  Oversized p;
  Simulator sim(g, p);
  EXPECT_DEATH(sim.run(), "DS_CHECK");
}

}  // namespace
}  // namespace dsketch
